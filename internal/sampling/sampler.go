// Package sampling implements polynomial-time s-t reliability estimation
// over uncertain graphs: plain Monte Carlo sampling with lazy edge
// instantiation (Fishman-style, §3.1 of the paper), recursive stratified
// sampling (RSS, Li et al. TKDE'16; §5.3), and a word-parallel Monte Carlo
// variant ("mcvec", MCVec) that samples 64 possible worlds per BFS by
// packing edge existence into uint64 lane masks — plus single-source
// reliability vectors used by the search-space elimination of Algorithm 4.
//
// # Vector Monte Carlo determinism
//
// MCVec is statistically equivalent to MonteCarlo — both are unbiased
// estimators of the same reliability — but NOT stream-compatible with it:
// the vector sampler draws 64 Bernoulli trials per RNG interaction
// (rng.BernoulliMask over a SplitMix64 word stream) where the scalar
// sampler draws one Float64, so the two consume different randomness and
// their estimates differ within Monte Carlo error at equal Z. MCVec's own
// determinism contract matches every other sampler's: a fixed seed yields
// bit-identical estimates across runs, across Graph/CSR/overlay entry
// points, and — through ParallelSampler's 64-aligned shard budgets — at
// any worker count. Budgets are processed in blocks of 64 lanes with the
// final block masked down to z%64 lanes, so any Z is honored exactly.
//
// # Snapshots
//
// All estimators run their inner loops on a frozen ugraph.CSR snapshot —
// a flat, immutable, cache-friendly view of the graph. The Graph-taking
// Sampler methods are thin wrappers that call Graph.Freeze (cached on the
// graph, rebuilt only after a mutation) and delegate to the CSR-taking
// methods of CSRSampler. Hot callers that evaluate many candidate edges
// against one base graph freeze once and use CSR.WithEdges overlays, so no
// snapshot is rebuilt per candidate. Estimates on a CSR are bit-identical
// to estimates on the Graph it was frozen from at the same seed: freezing
// preserves arc order, so the samplers consume randomness identically.
//
// # Concurrency
//
// A CSR is immutable and safe for unrestricted concurrent traversal. The
// serial estimators (MonteCarlo, RSS, Lazy) are deterministic given their
// construction seed but are NOT safe for concurrent use: they reuse
// internal scratch buffers (epoch-stamped visited/edge-state arrays, BFS
// queue, RSS conditioning stack) across calls. ParallelSampler wraps any
// of them into a goroutine-safe estimator that freezes the graph once per
// call, shards the sample budget across a worker pool and merges the shard
// estimates deterministically, so a fixed seed yields bit-identical results
// regardless of the worker count or GOMAXPROCS. Batched evaluation of many
// queries, candidate edges or source/target vectors at once goes through
// the BatchSampler interface.
package sampling

import (
	"context"
	"math/rand"

	"repro/internal/ugraph"
)

// Sampler estimates reliability over uncertain graphs. All implementations
// are deterministic given their seed. The serial implementations
// (MonteCarlo, RSS, Lazy) are NOT safe for concurrent use — they reuse
// internal scratch buffers — and must be confined to one goroutine at a
// time; wrap them in a ParallelSampler for concurrent callers.
type Sampler interface {
	// Name identifies the estimator ("mc", "rss" or "lazy"). A
	// ParallelSampler reports its underlying estimator's name: parallel
	// execution is a property of the run, not of the estimate.
	Name() string
	// Reliability estimates R(s, t, G), the probability that t is
	// reachable from s.
	Reliability(g *ugraph.Graph, s, t ugraph.NodeID) float64
	// ReliabilityFrom estimates R(s, v, G) for every node v; entry s is 1.
	ReliabilityFrom(g *ugraph.Graph, s ugraph.NodeID) []float64
	// ReliabilityTo estimates R(v, t, G) for every node v; entry t is 1.
	ReliabilityTo(g *ugraph.Graph, t ugraph.NodeID) []float64
	// SampleSize returns the configured total sample count Z.
	SampleSize() int
	// SetSampleSize reconfigures Z. Not safe to call concurrently with
	// estimates on serial samplers.
	SetSampleSize(z int)
	// Reseed resets the sampler's random stream to the given seed, as if
	// it had just been constructed with it. ParallelSampler uses this to
	// hand each work shard its own deterministic stream.
	Reseed(seed int64)
	// SetContext binds a context that the estimation loops poll between
	// sample blocks (never per edge): when ctx is cancelled or its
	// deadline passes, the estimate in progress returns early — within
	// one block of walks — with whatever samples were already drawn.
	// Binding a context does not change the randomness an uncancelled
	// estimate consumes, so results stay bit-identical to an unbound
	// sampler. nil (or a context that can never be cancelled, like
	// context.Background) removes the binding. On serial samplers, bind
	// before estimating from the owning goroutine; on a ParallelSampler
	// the binding applies to subsequent calls and must not race with
	// in-flight estimates — concurrent callers derive one sampler per
	// request instead of sharing a binding.
	SetContext(ctx context.Context)
}

// CSRSampler is the snapshot-level interface implemented by every built-in
// sampler: the same estimates as the Sampler methods, but on an
// already-frozen ugraph.CSR. Callers that evaluate many candidate views of
// one base graph (candidate elimination, greedy edge scoring) freeze once,
// derive CSR.WithEdges overlays, and call these methods directly so the
// per-candidate snapshot cost disappears. For the built-in samplers the
// Graph-taking methods are exactly ReliabilityCSR(g.Freeze(), ...).
type CSRSampler interface {
	Sampler
	// ReliabilityCSR estimates R(s, t) on a frozen snapshot.
	ReliabilityCSR(c *ugraph.CSR, s, t ugraph.NodeID) float64
	// ReliabilityFromCSR estimates R(s, v) for every node v on a snapshot.
	ReliabilityFromCSR(c *ugraph.CSR, s ugraph.NodeID) []float64
	// ReliabilityToCSR estimates R(v, t) for every node v on a snapshot.
	ReliabilityToCSR(c *ugraph.CSR, t ugraph.NodeID) []float64
}

// PairQuery is one (source, target) reliability query, used by the batched
// estimation APIs.
type PairQuery struct {
	S, T ugraph.NodeID
}

// BatchSampler is the optional batched-evaluation interface implemented by
// ParallelSampler. Callers holding a plain Sampler can type-assert to it
// and fall back to one-at-a-time loops otherwise; the core solvers do
// exactly that in their hot paths (candidate elimination, greedy candidate
// scoring, pair-reliability matrices).
type BatchSampler interface {
	Sampler
	// EstimateMany estimates R(q.S, q.T, G) for every query, each with
	// the full sample budget Z sharded across the pool (so even a
	// one-query batch keeps every worker busy). Result i is deterministic
	// in (seed, i) regardless of scheduling.
	EstimateMany(g *ugraph.Graph, queries []PairQuery) []float64
	// EstimateEdges estimates R(s, t, G ∪ {e}) for each candidate edge e
	// in isolation — the inner loop of the greedy and top-k baselines.
	// The graph is frozen once and each candidate is evaluated on a
	// lightweight CSR overlay, budget-sharded like EstimateMany.
	EstimateEdges(g *ugraph.Graph, s, t ugraph.NodeID, edges []ugraph.Edge) []float64
	// ReliabilityFromMany estimates one ReliabilityFrom vector per
	// source. Statistically equivalent to per-source calls but drawn
	// from different deterministic streams (keyed on the source's batch
	// index), so values are not bit-identical to ReliabilityFrom.
	ReliabilityFromMany(g *ugraph.Graph, sources []ugraph.NodeID) [][]float64
	// ReliabilityToMany is ReliabilityFromMany's reverse-direction
	// counterpart.
	ReliabilityToMany(g *ugraph.Graph, targets []ugraph.NodeID) [][]float64
}

// scratch holds reusable per-snapshot working memory shared by the
// estimators. The epoch trick avoids clearing the visited/edge-state
// arrays between the thousands of BFS walks a single query performs, and
// the walk queue is reused across samples, so the steady-state inner loop
// performs zero heap allocations (asserted by the alloc regression tests).
type scratch struct {
	epoch  int32
	nodeEp []int32 // per-node visited epoch
	// edgeSt packs the per-edge sampled state and its epoch into one
	// array: |edgeSt[e]| == epoch means e was sampled this walk, and the
	// sign carries the coin (+epoch present, -epoch absent). One int32
	// load where the old layout (epoch array + bool array) took two.
	edgeSt []int32
	queue  []ugraph.NodeID
}

func (sc *scratch) reset(n, m int) {
	// When the epoch counter restarts, EVERY mark array must be zeroed —
	// not just the one that grew. A stale mark equal to a reused low epoch
	// would make the BFS skip an unvisited node (e.g. a base-graph call
	// followed by a one-edge-larger overlay call reallocates edgeSt only,
	// while nodeEp still holds marks from the previous epochs).
	if len(sc.nodeEp) < n || len(sc.edgeSt) < m {
		if len(sc.nodeEp) < n {
			sc.nodeEp = make([]int32, n)
		} else {
			clear(sc.nodeEp)
		}
		if len(sc.edgeSt) < m {
			sc.edgeSt = make([]int32, m)
		} else {
			clear(sc.edgeSt)
		}
		sc.epoch = 0
	}
	if cap(sc.queue) < n {
		sc.queue = make([]ugraph.NodeID, 0, n)
	}
}

// nextEpoch advances the epoch counter, recycling the arrays. On wraparound
// (after ~2^31 walks) it clears them explicitly.
func (sc *scratch) nextEpoch() {
	sc.epoch++
	if sc.epoch <= 0 {
		for i := range sc.nodeEp {
			sc.nodeEp[i] = 0
		}
		for i := range sc.edgeSt {
			sc.edgeSt[i] = 0
		}
		sc.epoch = 1
	}
}

// sampledWalk performs one possible-world BFS from src over a frozen
// snapshot. When t >= 0 it stops early upon reaching t and returns whether
// it did; when counts != nil every reached node's counter is incremented.
// Edge states are sampled lazily and memoized per walk via the signed
// epoch array, so an undirected edge examined from both endpoints gets one
// consistent coin flip. A non-nil status slice conditions the walk:
// entries +1 force the edge present, -1 absent, 0 leaves it random — this
// is what the RSS strata use. Overlay arcs are visited after the base row
// of each node, matching mutable-Graph arc order.
func sampledWalk(sc *scratch, r *rand.Rand, c *ugraph.CSR, src, t ugraph.NodeID, forward bool, counts []float64, status []int8) bool {
	sc.nextEpoch()
	// Hoist the scratch fields into locals: the loop below is the hottest
	// code in the library and the compiler cannot cache pointer-reached
	// fields across the append.
	epoch := sc.epoch
	nodeEp, edgeSt := sc.nodeEp, sc.edgeSt
	queue := sc.queue[:0]
	queue = append(queue, src)
	nodeEp[src] = epoch
	if counts != nil {
		counts[src]++
	}
	hasX := c.HasOverlay()
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		var arcs, extra []ugraph.Arc
		var probs, xprobs []float64
		if forward {
			arcs, probs = c.Out(u), c.OutProbs(u)
			if hasX {
				extra, xprobs = c.OutOverlay(u), c.OutOverlayProbs(u)
			}
		} else {
			arcs, probs = c.In(u), c.InProbs(u)
			if hasX {
				extra, xprobs = c.InOverlay(u), c.InOverlayProbs(u)
			}
		}
		for {
			for i, a := range arcs {
				if nodeEp[a.To] == epoch {
					continue
				}
				if status != nil {
					switch status[a.EID] {
					case 1:
						goto traverse
					case -1:
						continue
					}
				}
				if st := edgeSt[a.EID]; st != epoch && st != -epoch {
					if r.Float64() < probs[i] {
						edgeSt[a.EID] = epoch
					} else {
						edgeSt[a.EID] = -epoch
						continue
					}
				} else if st != epoch {
					continue
				}
			traverse:
				nodeEp[a.To] = epoch
				if a.To == t {
					sc.queue = queue
					return true
				}
				if counts != nil {
					counts[a.To]++
				}
				queue = append(queue, a.To)
			}
			if len(extra) == 0 {
				break
			}
			arcs, probs, extra = extra, xprobs, nil
		}
	}
	sc.queue = queue
	return false
}

// sampledWalkPlain is sampledWalk specialized for the scalar early-exit
// query (no conditioning, no counts) — the single hottest loop in the
// library. Dropping the two always-false per-edge branches of the generic
// walk is worth several percent on the MC hot path. It consumes randomness
// identically to sampledWalk(sc, r, c, src, t, forward, nil, nil).
func sampledWalkPlain(sc *scratch, r *rand.Rand, c *ugraph.CSR, src, t ugraph.NodeID, forward bool) bool {
	sc.nextEpoch()
	epoch := sc.epoch
	nodeEp, edgeSt := sc.nodeEp, sc.edgeSt
	queue := sc.queue[:0]
	queue = append(queue, src)
	nodeEp[src] = epoch
	hasX := c.HasOverlay()
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		var arcs, extra []ugraph.Arc
		var probs, xprobs []float64
		if forward {
			arcs, probs = c.Out(u), c.OutProbs(u)
			if hasX {
				extra, xprobs = c.OutOverlay(u), c.OutOverlayProbs(u)
			}
		} else {
			arcs, probs = c.In(u), c.InProbs(u)
			if hasX {
				extra, xprobs = c.InOverlay(u), c.InOverlayProbs(u)
			}
		}
		for {
			for i, a := range arcs {
				if nodeEp[a.To] == epoch {
					continue
				}
				if st := edgeSt[a.EID]; st != epoch && st != -epoch {
					if r.Float64() < probs[i] {
						edgeSt[a.EID] = epoch
					} else {
						edgeSt[a.EID] = -epoch
						continue
					}
				} else if st != epoch {
					continue
				}
				nodeEp[a.To] = epoch
				if a.To == t {
					sc.queue = queue
					return true
				}
				queue = append(queue, a.To)
			}
			if len(extra) == 0 {
				break
			}
			arcs, probs, extra = extra, xprobs, nil
		}
	}
	sc.queue = queue
	return false
}

// deterministicReach computes the set of nodes reachable from src using
// edges whose status passes the filter: present-only, or present plus
// undetermined (optimistic). It writes the epoch marks into sc and returns
// the reached queue slice (valid until the next walk). When target >= 0
// the BFS stops as soon as the target is marked — callers that only test
// "is t reachable?" (the RSS certain-success/certain-failure pruning) skip
// the rest of the closure; the traversal consumes no randomness, so the
// early exit cannot perturb any estimate.
func deterministicReach(sc *scratch, c *ugraph.CSR, src, target ugraph.NodeID, forward bool, status []int8, optimistic bool) []ugraph.NodeID {
	sc.nextEpoch()
	epoch := sc.epoch
	nodeEp := sc.nodeEp
	queue := sc.queue[:0]
	queue = append(queue, src)
	nodeEp[src] = epoch
	if src == target {
		sc.queue = queue
		return queue
	}
	hasX := c.HasOverlay()
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		var arcs, extra []ugraph.Arc
		if forward {
			arcs = c.Out(u)
			if hasX {
				extra = c.OutOverlay(u)
			}
		} else {
			arcs = c.In(u)
			if hasX {
				extra = c.InOverlay(u)
			}
		}
		for {
			for _, a := range arcs {
				if nodeEp[a.To] == epoch {
					continue
				}
				st := status[a.EID]
				if st == 1 || (optimistic && st == 0) {
					nodeEp[a.To] = epoch
					queue = append(queue, a.To)
					if a.To == target {
						sc.queue = queue
						return queue
					}
				}
			}
			if len(extra) == 0 {
				break
			}
			arcs, extra = extra, nil
		}
	}
	sc.queue = queue
	return queue
}

// sampledWalkCond is sampledWalk specialized for the RSS conditioned
// fallback: status is mandatory (no nil check per edge) and no counts are
// collected. It consumes randomness identically to
// sampledWalk(sc, r, c, src, t, forward, nil, status).
func sampledWalkCond(sc *scratch, r *rand.Rand, c *ugraph.CSR, src, t ugraph.NodeID, forward bool, status []int8) bool {
	sc.nextEpoch()
	epoch := sc.epoch
	nodeEp, edgeSt := sc.nodeEp, sc.edgeSt
	queue := sc.queue[:0]
	queue = append(queue, src)
	nodeEp[src] = epoch
	hasX := c.HasOverlay()
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		var arcs, extra []ugraph.Arc
		var probs, xprobs []float64
		if forward {
			arcs, probs = c.Out(u), c.OutProbs(u)
			if hasX {
				extra, xprobs = c.OutOverlay(u), c.OutOverlayProbs(u)
			}
		} else {
			arcs, probs = c.In(u), c.InProbs(u)
			if hasX {
				extra, xprobs = c.InOverlay(u), c.InOverlayProbs(u)
			}
		}
		for {
			for i, a := range arcs {
				if nodeEp[a.To] == epoch {
					continue
				}
				switch status[a.EID] {
				case 1:
					goto traverse
				case -1:
					continue
				}
				if st := edgeSt[a.EID]; st != epoch && st != -epoch {
					if r.Float64() < probs[i] {
						edgeSt[a.EID] = epoch
					} else {
						edgeSt[a.EID] = -epoch
						continue
					}
				} else if st != epoch {
					continue
				}
			traverse:
				nodeEp[a.To] = epoch
				if a.To == t {
					sc.queue = queue
					return true
				}
				queue = append(queue, a.To)
			}
			if len(extra) == 0 {
				break
			}
			arcs, probs, extra = extra, xprobs, nil
		}
	}
	sc.queue = queue
	return false
}
