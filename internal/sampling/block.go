package sampling

import (
	"math/bits"

	"repro/internal/ugraph"
)

// BlockSampler is implemented by serial samplers that can draw their
// possible worlds incrementally, in caller-sized blocks, instead of one
// fixed budget per call. It is the substrate of the anytime controller
// (internal/anytime): the controller opens a block stream for a query,
// draws blocks until its running confidence interval is tight enough, and
// stops — without ever discarding or re-drawing a sample.
//
// Determinism contract, pinned by the anytime differential tests: for the
// stream-continuing kinds (mc, lazy, mcvec) the concatenation of
// SampleBlock calls consumes randomness identically to one fixed-budget
// ReliabilityCSR call of the same total length at the same seed, so an
// adaptive run that stops after N samples is bit-identical to a fixed
// z = N run (for mcvec, provided every block size but the last is a
// multiple of its 64-lane quantum, which the anytime controller
// guarantees by construction). RSS is not prefix-continuable — its
// stratified recursion plans the whole budget up front — so each of its
// blocks is an independent stratified estimate of the same reliability
// and the pooled stream is reproducible per (seed, block schedule)
// rather than truncation-equivalent.
type BlockSampler interface {
	CSRSampler
	// BeginBlocks starts an incremental estimate of R(s, t) on the
	// snapshot, resetting per-query state exactly like the corresponding
	// ReliabilityCSR prologue. The returned stream borrows the sampler's
	// scratch: it is single-goroutine, and no other estimate may run on
	// the sampler until the stream is abandoned. Callers handle the
	// s == t certainty themselves; streams assume s != t.
	BeginBlocks(c *ugraph.CSR, s, t ugraph.NodeID) BlockStream
}

// BlockStream draws successive sample blocks for one query. SampleBlock
// runs n more possible worlds to completion (no mid-block cancellation —
// the anytime controller polls its context between blocks, keeping the
// drawn stream deterministic) and returns the success mass and the worlds
// actually drawn. For the Bernoulli kinds hits is an integer-valued count;
// for RSS it is est·n, so pooling Σhits/Σdrawn stays an unbiased estimate
// for every kind.
type BlockStream interface {
	SampleBlock(n int) (hits float64, drawn int)
}

// --- MonteCarlo ---

type mcBlocks struct {
	mc   *MonteCarlo
	c    *ugraph.CSR
	s, t ugraph.NodeID
}

// BeginBlocks implements BlockSampler. The scalar walk consumes randomness
// per (edge, world), so block boundaries are invisible to the stream.
func (mc *MonteCarlo) BeginBlocks(c *ugraph.CSR, s, t ugraph.NodeID) BlockStream {
	mc.sc.reset(c.N(), c.EdgeIDBound())
	return &mcBlocks{mc: mc, c: c, s: s, t: t}
}

func (bs *mcBlocks) SampleBlock(n int) (float64, int) {
	mc := bs.mc
	hits := 0
	for i := 0; i < n; i++ {
		if sampledWalkPlain(&mc.sc, mc.r, bs.c, bs.s, bs.t, true) {
			hits++
		}
	}
	return float64(hits), n
}

// --- MCVec ---

type vecBlocks struct {
	v    *MCVec
	c    *ugraph.CSR
	s, t ugraph.NodeID
}

// BeginBlocks implements BlockSampler. Randomness is consumed per
// (edge, lane block), so the stream matches a fixed-budget run as long as
// only the final block is lane-masked — i.e. every SampleBlock size but
// the last is a multiple of 64.
func (v *MCVec) BeginBlocks(c *ugraph.CSR, s, t ugraph.NodeID) BlockStream {
	v.sc.reset(c.N(), c.EdgeIDBound())
	return &vecBlocks{v: v, c: c, s: s, t: t}
}

func (bs *vecBlocks) SampleBlock(n int) (float64, int) {
	v := bs.v
	hits, drawn := 0, 0
	for remaining := n; remaining > 0; remaining -= laneBlock {
		lanes := fullLanes
		if remaining < laneBlock {
			lanes = fullLanes >> (laneBlock - remaining)
		}
		hits += bits.OnesCount64(v.block(bs.c, bs.s, bs.t, true, lanes, nil))
		drawn += bits.OnesCount64(lanes)
	}
	return float64(hits), drawn
}

// --- Lazy ---

type lazyBlocks struct {
	lz   *Lazy
	c    *ugraph.CSR
	s, t ugraph.NodeID
}

// BeginBlocks implements BlockSampler. The geometric schedules are
// per-query state reset here (exactly the ReliabilityCSR prologue) and
// advanced per sample thereafter, so block boundaries never perturb them.
func (lz *Lazy) BeginBlocks(c *ugraph.CSR, s, t ugraph.NodeID) BlockStream {
	lz.prepare(c)
	return &lazyBlocks{lz: lz, c: c, s: s, t: t}
}

func (bs *lazyBlocks) SampleBlock(n int) (float64, int) {
	lz := bs.lz
	hits := 0
	for i := 0; i < n; i++ {
		lz.sample++
		if lz.walk(bs.c, bs.s, bs.t, true, nil) {
			hits++
		}
	}
	return float64(hits), n
}

// --- RSS ---

type rssBlocks struct {
	rs   *RSS
	c    *ugraph.CSR
	s, t ugraph.NodeID
}

// BeginBlocks implements BlockSampler. RSS plans its stratification for a
// whole budget, so each SampleBlock runs one independent stratified
// estimate over n samples (recurse restores the conditioning status and
// arena completely on exit, making back-to-back recursions safe after one
// prepare). The RNG stream advances across blocks, so blocks are
// independent draws, and the pooled estimate is the budget-weighted mean
// of unbiased per-block estimates — the same merge rule ParallelSampler
// applies to RSS shards.
func (rs *RSS) BeginBlocks(c *ugraph.CSR, s, t ugraph.NodeID) BlockStream {
	rs.prepare(c)
	return &rssBlocks{rs: rs, c: c, s: s, t: t}
}

func (bs *rssBlocks) SampleBlock(n int) (float64, int) {
	if n < 1 {
		n = 1
	}
	est := bs.rs.recurse(bs.c, bs.s, bs.t, n)
	return est * float64(n), n
}
