package sampling

// Tests for the word-parallel 64-lane Monte Carlo sampler: exactness on
// deterministic graphs, the z % 64 tail lane mask, the pinned determinism
// contract (fixed seed -> bit-identical; ParallelSampler wrapping ->
// bit-identical at any worker count with 64-aligned shard budgets), and
// statistical agreement with the scalar MonteCarlo reference at large
// budgets. The scalar mc stays the bit-exactness oracle for the legacy
// stream; mcvec's own stream is pinned by these tests instead.

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/ugraph"
)

// mcvecGraph is a mid-size random graph with enough structure that BFS
// order, memoized edge masks and the undirected both-endpoints path all
// get exercised.
func mcvecGraph(n int, directed bool, seed int64) *ugraph.Graph {
	r := rand.New(rand.NewSource(seed))
	g := ugraph.New(n, directed)
	for i := 0; i < 5*n; i++ {
		u := ugraph.NodeID(r.Intn(n))
		v := ugraph.NodeID(r.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 0.1+0.8*r.Float64())
	}
	return g
}

// TestMCVecExactOnDeterministicGraphs pins the lane-mask bookkeeping where
// sampling noise cannot hide it: on a p=1 path every lane must count
// exactly once (estimate exactly 1 at every budget, including the z%64
// tails), and on a p=0 edge no lane may ever fire.
func TestMCVecExactOnDeterministicGraphs(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := ugraph.New(5, directed)
		for i := 0; i < 4; i++ {
			g.MustAddEdge(ugraph.NodeID(i), ugraph.NodeID(i+1), 1)
		}
		zero := ugraph.New(2, directed)
		zero.MustAddEdge(0, 1, 0)
		for _, z := range []int{1, 63, 64, 65, 129, 500} {
			v := NewMCVec(z, 7)
			if got := v.Reliability(g, 0, 4); got != 1 {
				t.Errorf("directed=%v z=%d: p=1 path estimate %v, want exactly 1", directed, z, got)
			}
			if got := v.Reliability(zero, 0, 1); got != 0 {
				t.Errorf("directed=%v z=%d: p=0 edge estimate %v, want exactly 0", directed, z, got)
			}
			if got := v.Reliability(g, 2, 2); got != 1 {
				t.Errorf("directed=%v z=%d: s==t estimate %v, want 1", directed, z, got)
			}
		}
	}
}

// TestMCVecTailMask covers the z%64 tail explicitly at z = 1, 63, 64, 65:
// the estimate must be a multiple of 1/z (exactly k worlds out of exactly
// z succeeded — a wrong lane mask would divide by the wrong world count or
// let ghost lanes vote), and a reseeded sampler must replay it bit for bit.
func TestMCVecTailMask(t *testing.T) {
	g := mcvecGraph(60, false, 11)
	s, tt := ugraph.NodeID(0), ugraph.NodeID(59)
	for _, z := range []int{1, 63, 64, 65} {
		v := NewMCVec(z, 3)
		got := v.Reliability(g, s, tt)
		k := got * float64(z)
		if k != math.Trunc(k) || k < 0 || k > float64(z) {
			t.Errorf("z=%d: estimate %v is not k/%d for integer k in [0,%d]", z, got, z, z)
		}
		v.Reseed(3)
		if replay := v.Reliability(g, s, tt); replay != got {
			t.Errorf("z=%d: reseeded replay %v != first run %v", z, replay, got)
		}
		if fresh := NewMCVec(z, 3).Reliability(g, s, tt); fresh != got {
			t.Errorf("z=%d: fresh sampler %v != warm sampler %v", z, fresh, got)
		}
	}
}

// agreementTolerance is the allowed |scalar - vector| gap for two
// independent z-sample MC estimates of the same probability: both are
// binomial means, so the difference has standard deviation
// sqrt(2 p(1-p) / z); five sigmas (with the conservative p=0.5 bound) keeps
// the false-failure probability per comparison below 1e-6.
func agreementTolerance(z int) float64 {
	return 5 * math.Sqrt(2*0.25/float64(z))
}

// TestMCVecStatisticalAgreement is the acceptance differential: at
// z >= 10k the vector estimate must agree with the scalar MonteCarlo
// reference within CI bounds — scalar and vector draw different streams,
// so agreement is statistical, never bit-exact. Covers both orientations
// of the s-t query plus the From/To vector estimators, directed and
// undirected, and the overlay path.
func TestMCVecStatisticalAgreement(t *testing.T) {
	const z = 10_000
	tol := agreementTolerance(z)
	for _, directed := range []bool{false, true} {
		g := mcvecGraph(80, directed, 23)
		s, tt := ugraph.NodeID(0), ugraph.NodeID(79)
		mc := NewMonteCarlo(z, 101)
		vec := NewMCVec(z, 202)
		name := map[bool]string{false: "undirected", true: "directed"}[directed]

		a, b := mc.Reliability(g, s, tt), vec.Reliability(g, s, tt)
		if math.Abs(a-b) > tol {
			t.Errorf("%s: Reliability scalar %v vs vector %v differ beyond %v", name, a, b, tol)
		}

		mc.Reseed(101)
		vec.Reseed(202)
		av, bv := mc.ReliabilityFrom(g, s), vec.ReliabilityFrom(g, s)
		for i := range av {
			if math.Abs(av[i]-bv[i]) > tol {
				t.Errorf("%s: ReliabilityFrom[%d] scalar %v vs vector %v differ beyond %v", name, i, av[i], bv[i], tol)
			}
		}

		mc.Reseed(101)
		vec.Reseed(202)
		av, bv = mc.ReliabilityTo(g, tt), vec.ReliabilityTo(g, tt)
		for i := range av {
			if math.Abs(av[i]-bv[i]) > tol {
				t.Errorf("%s: ReliabilityTo[%d] scalar %v vs vector %v differ beyond %v", name, i, av[i], bv[i], tol)
			}
		}

		overlay := g.Freeze().WithEdges([]ugraph.Edge{{U: s, V: tt, P: 0.5}})
		mc.Reseed(101)
		vec.Reseed(202)
		a, b = mc.ReliabilityCSR(overlay, s, tt), vec.ReliabilityCSR(overlay, s, tt)
		if math.Abs(a-b) > tol {
			t.Errorf("%s: overlay scalar %v vs vector %v differ beyond %v", name, a, b, tol)
		}
	}
}

// TestMCVecParallelBitIdentical pins the vector path's parallel determinism
// contract: a ParallelSampler over mcvec returns bit-identical estimate
// sequences at any worker count for a fixed seed — the shard structure
// (64-aligned budgets, per-shard SplitSeed streams), not the scheduling,
// fixes the randomness.
func TestMCVecParallelBitIdentical(t *testing.T) {
	g := mcvecGraph(100, true, 31)
	s, tt := ugraph.NodeID(1), ugraph.NodeID(97)
	const z = 1000
	want := make([]float64, 0, 3)
	{
		ps, err := NewParallel("mcvec", z, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		for call := 0; call < 3; call++ {
			want = append(want, ps.Reliability(g, s, tt))
		}
	}
	for _, w := range []int{2, 4, 8} {
		ps, err := NewParallel("mcvec", z, 5, w)
		if err != nil {
			t.Fatal(err)
		}
		for call := 0; call < 3; call++ {
			if got := ps.Reliability(g, s, tt); got != want[call] {
				t.Errorf("w=%d call %d: %v != w=1 result %v", w, call, got, want[call])
			}
		}
	}
	// The shared-scratch construction must agree with the cold pools too.
	ss, err := NewSharedScratch("mcvec")
	if err != nil {
		t.Fatal(err)
	}
	ps := NewParallelShared(ss, z, 5, 4)
	for call := 0; call < 3; call++ {
		if got := ps.Reliability(g, s, tt); got != want[call] {
			t.Errorf("shared pool call %d: %v != cold pool %v", call, got, want[call])
		}
	}
}

// TestMCVecShardBudgets pins the 64-aligned budget split: every mcvec shard
// except the last is a whole number of lane blocks, the last absorbs the
// z%64 tail, budgets sum to z — and the scalar kinds' split is unchanged
// from the historical even distribution (their shard streams must stay
// bit-identical to earlier releases).
func TestMCVecShardBudgets(t *testing.T) {
	vec, err := NewParallel("mcvec", 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range []int{1, 63, 64, 65, 640, 1000, 4000} {
		budgets := vec.shardBudgets(z)
		sum := 0
		for i, b := range budgets {
			sum += b
			if b < 1 {
				t.Errorf("z=%d: shard %d budget %d < 1", z, i, b)
			}
			if i < len(budgets)-1 && b%64 != 0 {
				t.Errorf("z=%d: interior shard %d budget %d not 64-aligned", z, i, b)
			}
		}
		if sum != z {
			t.Errorf("z=%d: budgets %v sum to %d", z, budgets, sum)
		}
	}
	mc, err := NewParallel("mc", 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		z    int
		want []int
	}{
		{100, []int{50, 50}},
		{1000, []int{63, 63, 63, 63, 63, 63, 63, 63, 62, 62, 62, 62, 62, 62, 62, 62}},
		{5, []int{5}},
	} {
		got := mc.shardBudgets(tc.z)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("scalar shardBudgets(%d) = %v, want historical %v", tc.z, got, tc.want)
		}
	}
}

// TestMCVecCancellation checks the per-block ctx poll: an already-cancelled
// context yields 0 drawn worlds, and a context cancelled mid-estimate
// returns an unbiased partial fraction (k/drawn for whole blocks drawn).
func TestMCVecCancellation(t *testing.T) {
	g := mcvecGraph(60, false, 41)
	v := NewMCVec(10_000, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v.SetContext(ctx)
	if got := v.Reliability(g, 0, 59); got != 0 {
		t.Errorf("pre-cancelled estimate %v, want 0 (no worlds drawn)", got)
	}
	v.SetContext(nil)
	v.Reseed(3)
	want := v.Reliability(g, 0, 59)
	if want <= 0 || want > 1 {
		t.Fatalf("unbound estimate %v out of range", want)
	}
}

// FuzzMCVecScalarReplay is the vector/scalar consistency oracle: run one
// lane block of the vector From-estimator, then replay every lane as a
// scalar BFS over the very bitmasks the vector run sampled (they stay
// memoized in the scratch), and demand the pop-count totals match node for
// node. A propagation bug (lost lane, leaked lane, stale mask) cannot
// survive this; a replay touching an edge the vector run never sampled is
// itself a failure, since the vector BFS must examine every edge any of
// its lanes can reach.
func FuzzMCVecScalarReplay(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(40), []byte{0, 1, 200, 1, 2, 128, 2, 3, 255, 0, 3, 60})
	f.Add(int64(99), uint8(64), uint8(5), []byte{0, 1, 1, 1, 2, 254, 0, 2, 127})
	f.Add(int64(-7), uint8(33), uint8(17), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, zRaw, nRaw uint8, edgeData []byte) {
		n := 2 + int(nRaw)%40
		z := 1 + int(zRaw)%laneBlock // single block, full or tail lane mask
		directed := nRaw%2 == 0
		g := ugraph.New(n, directed)
		for i := 0; i+2 < len(edgeData); i += 3 {
			u := ugraph.NodeID(int(edgeData[i]) % n)
			v := ugraph.NodeID(int(edgeData[i+1]) % n)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.MustAddEdge(u, v, float64(edgeData[i+2])/255)
		}
		c := g.Freeze()
		src := ugraph.NodeID(int(seed) & 0x7fffffff % n)

		vec := NewMCVec(z, seed)
		counts := vec.ReliabilityFromCSR(c, src)
		epoch := vec.sc.epoch

		// Scalar replay: lane j is one possible world whose edge states are
		// the j-th bits of the masks the vector run memoized.
		reach := make([]int, n)
		visited := make([]bool, n)
		queue := make([]ugraph.NodeID, 0, n)
		for lane := 0; lane < z; lane++ {
			bit := uint64(1) << lane
			clear(visited)
			queue = queue[:0]
			queue = append(queue, src)
			visited[src] = true
			for head := 0; head < len(queue); head++ {
				u := queue[head]
				for _, a := range c.Out(u) {
					if visited[a.To] {
						continue
					}
					if vec.sc.edges[a.EID].ep != epoch {
						t.Fatalf("lane %d reached edge %d that the vector run never sampled", lane, a.EID)
					}
					if vec.sc.edges[a.EID].mask&bit == 0 {
						continue
					}
					visited[a.To] = true
					queue = append(queue, a.To)
				}
			}
			for v := range visited {
				if visited[v] {
					reach[v]++
				}
			}
		}
		for v := range reach {
			got := counts[v] * float64(z)
			if math.Abs(got-float64(reach[v])) > 1e-9 {
				t.Errorf("node %d: vector pop-count total %v != scalar replay %d (z=%d, directed=%v)", v, got, reach[v], z, directed)
			}
		}
		_ = bits.OnesCount64 // keep the import honest if assertions change
	})
}
