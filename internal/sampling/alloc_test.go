package sampling

// Allocation regression tests: the tentpole contract of the CSR refactor
// is that a warmed-up sampler performs ZERO heap allocations per sample in
// its scalar inner loop — the scratch arrays, BFS queue and (for RSS) the
// boundary arena are all reused, and the snapshot comes from the graph's
// Freeze cache. testing.AllocsPerRun pins that at exactly 0 so a future
// change can't silently reintroduce per-sample garbage.

import (
	"math/rand"
	"testing"

	"repro/internal/rng"
	"repro/internal/ugraph"
)

// allocGraph is a graph big enough that a regression to per-sample or
// per-node allocations would be unmissable.
func allocGraph(directed bool) *ugraph.Graph {
	r := rand.New(rand.NewSource(5))
	n := 120
	g := ugraph.New(n, directed)
	for i := 0; i < 6*n; i++ {
		u := ugraph.NodeID(r.Intn(n))
		v := ugraph.NodeID(r.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 0.1+0.8*r.Float64())
	}
	return g
}

// assertZeroAllocs runs fn once to warm the scratch buffers (and grow the
// RSS arena to its steady-state capacity), then demands zero allocations
// across repeated runs. fn must reseed internally so every run replays the
// same recursion shape.
func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	fn() // warm-up: scratch arrays, arena and Freeze cache are built here
	if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
		t.Errorf("%s: %v allocs per estimate after warm-up, want 0", name, allocs)
	}
}

// TestReliabilityZeroAllocs covers the MC and RSS scalar loops the issue
// pins, plus lazy for completeness, in both orientations (the directed
// ReliabilityTo path walks the separate in-arc array).
func TestReliabilityZeroAllocs(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := allocGraph(directed)
		s, tt := ugraph.NodeID(0), ugraph.NodeID(g.N()-1)
		mc := NewMonteCarlo(64, 3)
		rs := NewRSS(64, 3)
		lz := NewLazy(64, 3)
		// z=130 spans two full lane blocks plus a tail mask, so the vector
		// loop's block iteration and partial-lane path are both measured.
		vec := NewMCVec(130, 3)
		suffix := "/undirected"
		if directed {
			suffix = "/directed"
		}
		assertZeroAllocs(t, "mc"+suffix, func() {
			mc.Reseed(3)
			mc.Reliability(g, s, tt)
		})
		assertZeroAllocs(t, "rss"+suffix, func() {
			rs.Reseed(3)
			rs.Reliability(g, s, tt)
		})
		assertZeroAllocs(t, "lazy"+suffix, func() {
			lz.Reseed(3)
			lz.Reliability(g, s, tt)
		})
		assertZeroAllocs(t, "mcvec"+suffix, func() {
			vec.Reseed(3)
			vec.Reliability(g, s, tt)
		})
		// The backward orientation returns a fresh counts vector (inherent
		// to the API); the vector loop behind it must add nothing.
		c := g.Freeze()
		vec.ReliabilityToCSR(c, tt) // warm-up
		if allocs := testing.AllocsPerRun(10, func() {
			vec.Reseed(3)
			vec.ReliabilityToCSR(c, tt)
		}); allocs > 1 {
			t.Errorf("mcvec/to%s: %v allocs per call, want <= 1 (the result slice)", suffix, allocs)
		}
	}
}

// TestOverlayReliabilityZeroAllocs pins the candidate-evaluation shape:
// once the overlay view exists, estimating on it allocates nothing either.
func TestOverlayReliabilityZeroAllocs(t *testing.T) {
	g := allocGraph(false)
	s, tt := ugraph.NodeID(0), ugraph.NodeID(g.N()-1)
	overlay := g.Freeze().WithEdges([]ugraph.Edge{{U: s, V: tt, P: 0.3}})
	mc := NewMonteCarlo(64, 3)
	rs := NewRSS(64, 3)
	assertZeroAllocs(t, "mc/overlay", func() {
		mc.Reseed(3)
		mc.ReliabilityCSR(overlay, s, tt)
	})
	assertZeroAllocs(t, "rss/overlay", func() {
		rs.Reseed(3)
		rs.ReliabilityCSR(overlay, s, tt)
	})
	vec := NewMCVec(130, 3)
	assertZeroAllocs(t, "mcvec/overlay", func() {
		vec.Reseed(3)
		vec.ReliabilityCSR(overlay, s, tt)
	})
}

// TestFreezeCachedZeroAllocs pins that the Graph-level entry point itself
// stays allocation-free once the snapshot is cached — i.e. Freeze's fast
// path is a pointer load.
func TestFreezeCachedZeroAllocs(t *testing.T) {
	g := allocGraph(true)
	g.Freeze()
	if allocs := testing.AllocsPerRun(10, func() { g.Freeze() }); allocs != 0 {
		t.Errorf("cached Freeze allocates %v per call, want 0", allocs)
	}
}

// TestMultiSourceZeroAllocSteadyState covers the influence-layer walk
// (counts vector is caller-visible output, so the per-call slice is
// measured and subtracted by reseeding into a preallocated run).
func TestMultiSourceZeroAllocSteadyState(t *testing.T) {
	g := allocGraph(false)
	c := g.Freeze()
	sources := []ugraph.NodeID{0, 1}
	mc := NewMonteCarlo(32, 9)
	mc.MultiSourceReachCSR(c, sources) // warm-up
	// One output slice per call is inherent to the API; anything beyond
	// that (per-sample garbage) fails the bound.
	allocs := testing.AllocsPerRun(10, func() {
		mc.Reseed(9)
		mc.MultiSourceReachCSR(c, sources)
	})
	if allocs > 1 {
		t.Errorf("MultiSourceReachCSR: %v allocs per call, want <= 1 (the result slice)", allocs)
	}
}

var sinkFloat float64

// BenchmarkZeroAllocReliability is a convenience view of the same
// property under -benchmem (0 B/op, 0 allocs/op in steady state).
func BenchmarkZeroAllocReliability(b *testing.B) {
	g := allocGraph(false)
	s, tt := ugraph.NodeID(0), ugraph.NodeID(g.N()-1)
	for _, kind := range []string{"mc", "rss", "lazy"} {
		b.Run(kind, func(b *testing.B) {
			var smp Sampler
			switch kind {
			case "mc":
				smp = NewMonteCarlo(64, rng.SplitSeed(1, 2))
			case "rss":
				smp = NewRSS(64, rng.SplitSeed(1, 2))
			default:
				smp = NewLazy(64, rng.SplitSeed(1, 2))
			}
			smp.Reliability(g, s, tt)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkFloat = smp.Reliability(g, s, tt)
			}
		})
	}
}
