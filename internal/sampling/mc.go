package sampling

import (
	"math/rand"

	"repro/internal/rng"
	"repro/internal/ugraph"
)

// MonteCarlo is the classic possible-world sampler: it draws Z deterministic
// graphs by flipping one coin per edge (lazily, only for edges actually
// examined by the BFS) and reports the fraction of worlds in which t is
// reachable from s. Complexity O(Z·(n+m)) per query.
type MonteCarlo struct {
	z  int
	r  *rand.Rand
	sc scratch
}

// NewMonteCarlo returns an MC sampler drawing z possible worlds per query,
// seeded deterministically.
func NewMonteCarlo(z int, seed int64) *MonteCarlo {
	return &MonteCarlo{z: z, r: rng.New(seed)}
}

// Name implements Sampler.
func (mc *MonteCarlo) Name() string { return "mc" }

// SampleSize implements Sampler.
func (mc *MonteCarlo) SampleSize() int { return mc.z }

// SetSampleSize implements Sampler.
func (mc *MonteCarlo) SetSampleSize(z int) { mc.z = z }

// Reseed implements Sampler.
func (mc *MonteCarlo) Reseed(seed int64) { mc.r.Seed(seed) }

// Reliability implements Sampler.
func (mc *MonteCarlo) Reliability(g *ugraph.Graph, s, t ugraph.NodeID) float64 {
	if s == t {
		return 1
	}
	mc.sc.reset(g.N(), g.M())
	hits := 0
	for i := 0; i < mc.z; i++ {
		if mc.walk(g, s, t, true, nil) {
			hits++
		}
	}
	return float64(hits) / float64(mc.z)
}

// ReliabilityFrom implements Sampler.
func (mc *MonteCarlo) ReliabilityFrom(g *ugraph.Graph, s ugraph.NodeID) []float64 {
	return mc.vector(g, s, true)
}

// ReliabilityTo implements Sampler. For directed graphs it walks in-arcs
// backwards from t; v can reach t in a world iff the reverse walk reaches v.
func (mc *MonteCarlo) ReliabilityTo(g *ugraph.Graph, t ugraph.NodeID) []float64 {
	return mc.vector(g, t, false)
}

func (mc *MonteCarlo) vector(g *ugraph.Graph, src ugraph.NodeID, forward bool) []float64 {
	mc.sc.reset(g.N(), g.M())
	counts := make([]float64, g.N())
	for i := 0; i < mc.z; i++ {
		mc.walk(g, src, -1, forward, counts)
	}
	inv := 1 / float64(mc.z)
	for i := range counts {
		counts[i] *= inv
	}
	return counts
}

func (mc *MonteCarlo) walk(g *ugraph.Graph, src, t ugraph.NodeID, forward bool, counts []float64) bool {
	return sampledWalk(&mc.sc, mc.r, g, src, t, forward, counts, nil)
}
