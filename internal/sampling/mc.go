package sampling

import (
	"math/rand"

	"repro/internal/rng"
	"repro/internal/ugraph"
)

// MonteCarlo is the classic possible-world sampler: it draws Z deterministic
// graphs by flipping one coin per edge (lazily, only for edges actually
// examined by the BFS) and reports the fraction of worlds in which t is
// reachable from s. Complexity O(Z·(n+m)) per query. The inner loops run on
// a frozen CSR snapshot and allocate nothing in steady state.
type MonteCarlo struct {
	z  int
	r  *rand.Rand
	sc scratch
	canceller
}

// NewMonteCarlo returns an MC sampler drawing z possible worlds per query,
// seeded deterministically.
func NewMonteCarlo(z int, seed int64) *MonteCarlo {
	return &MonteCarlo{z: z, r: rng.New(seed)}
}

// Name implements Sampler.
func (mc *MonteCarlo) Name() string { return "mc" }

// SampleSize implements Sampler.
func (mc *MonteCarlo) SampleSize() int { return mc.z }

// SetSampleSize implements Sampler.
func (mc *MonteCarlo) SetSampleSize(z int) { mc.z = z }

// Reseed implements Sampler.
func (mc *MonteCarlo) Reseed(seed int64) { mc.r.Seed(seed) }

// Reliability implements Sampler.
func (mc *MonteCarlo) Reliability(g *ugraph.Graph, s, t ugraph.NodeID) float64 {
	return mc.ReliabilityCSR(g.Freeze(), s, t)
}

// ReliabilityCSR implements CSRSampler.
func (mc *MonteCarlo) ReliabilityCSR(c *ugraph.CSR, s, t ugraph.NodeID) float64 {
	if s == t {
		return 1
	}
	mc.sc.reset(c.N(), c.EdgeIDBound())
	hits := 0
	for i := 0; i < mc.z; i++ {
		if i&(ctxCheckBlock-1) == 0 && mc.cancelled() {
			// Interrupted: report the fraction over the worlds actually
			// drawn, so a partial estimate is still unbiased.
			if i == 0 {
				return 0
			}
			return float64(hits) / float64(i)
		}
		if sampledWalkPlain(&mc.sc, mc.r, c, s, t, true) {
			hits++
		}
	}
	return float64(hits) / float64(mc.z)
}

// ReliabilityFrom implements Sampler.
func (mc *MonteCarlo) ReliabilityFrom(g *ugraph.Graph, s ugraph.NodeID) []float64 {
	return mc.vector(g.Freeze(), s, true)
}

// ReliabilityTo implements Sampler. For directed graphs it walks in-arcs
// backwards from t; v can reach t in a world iff the reverse walk reaches v.
func (mc *MonteCarlo) ReliabilityTo(g *ugraph.Graph, t ugraph.NodeID) []float64 {
	return mc.vector(g.Freeze(), t, false)
}

// ReliabilityFromCSR implements CSRSampler.
func (mc *MonteCarlo) ReliabilityFromCSR(c *ugraph.CSR, s ugraph.NodeID) []float64 {
	return mc.vector(c, s, true)
}

// ReliabilityToCSR implements CSRSampler.
func (mc *MonteCarlo) ReliabilityToCSR(c *ugraph.CSR, t ugraph.NodeID) []float64 {
	return mc.vector(c, t, false)
}

func (mc *MonteCarlo) vector(c *ugraph.CSR, src ugraph.NodeID, forward bool) []float64 {
	mc.sc.reset(c.N(), c.EdgeIDBound())
	counts := make([]float64, c.N())
	drawn := mc.z
	for i := 0; i < mc.z; i++ {
		if i&(ctxCheckBlock-1) == 0 && mc.cancelled() {
			drawn = i
			break
		}
		sampledWalk(&mc.sc, mc.r, c, src, -1, forward, counts, nil)
	}
	if drawn == 0 {
		return counts
	}
	inv := 1 / float64(drawn)
	for i := range counts {
		counts[i] *= inv
	}
	return counts
}
