package sampling

// This file preserves the pre-CSR, slice-of-slices sampling engine
// verbatim as a test-only reference implementation. The differential tests
// assert that the CSR-based estimators are BIT-IDENTICAL to this code at
// the same seed — traversal order, RNG consumption and float arithmetic
// all included — which is what makes the CSR refactor safe to build on:
// any future change to the hot path that silently alters an estimate
// fails these tests immediately.

import (
	"math"
	"math/rand"

	"repro/internal/rng"
	"repro/internal/ugraph"
)

// refScratch is the legacy scratch layout (separate epoch and state
// arrays).
type refScratch struct {
	epoch  int32
	nodeEp []int32
	edgeEp []int32
	edgeOn []bool
	queue  []ugraph.NodeID
}

// reset mirrors the live scratch.reset, including the fix for the stale-
// mark bug the original slice-of-slices engine shipped with (an epoch
// restart must clear every mark array, not just the one that grew).
func (sc *refScratch) reset(n, m int) {
	if len(sc.nodeEp) < n || len(sc.edgeEp) < m {
		if len(sc.nodeEp) < n {
			sc.nodeEp = make([]int32, n)
		} else {
			clear(sc.nodeEp)
		}
		if len(sc.edgeEp) < m {
			sc.edgeEp = make([]int32, m)
			sc.edgeOn = make([]bool, m)
		} else {
			clear(sc.edgeEp)
		}
		sc.epoch = 0
	}
	if cap(sc.queue) < n {
		sc.queue = make([]ugraph.NodeID, 0, n)
	}
}

func (sc *refScratch) nextEpoch() {
	sc.epoch++
	if sc.epoch <= 0 {
		for i := range sc.nodeEp {
			sc.nodeEp[i] = 0
		}
		for i := range sc.edgeEp {
			sc.edgeEp[i] = 0
		}
		sc.epoch = 1
	}
}

func refSampledWalk(sc *refScratch, r *rand.Rand, g *ugraph.Graph, src, t ugraph.NodeID, forward bool, counts []float64, status []int8) bool {
	sc.nextEpoch()
	sc.queue = sc.queue[:0]
	sc.queue = append(sc.queue, src)
	sc.nodeEp[src] = sc.epoch
	if counts != nil {
		counts[src]++
	}
	for head := 0; head < len(sc.queue); head++ {
		u := sc.queue[head]
		var arcs []ugraph.Arc
		if forward {
			arcs = g.Out(u)
		} else {
			arcs = g.In(u)
		}
		for _, a := range arcs {
			if sc.nodeEp[a.To] == sc.epoch {
				continue
			}
			if status != nil {
				switch status[a.EID] {
				case 1:
					goto traverse
				case -1:
					continue
				}
			}
			if sc.edgeEp[a.EID] != sc.epoch {
				sc.edgeEp[a.EID] = sc.epoch
				sc.edgeOn[a.EID] = r.Float64() < g.Prob(a.EID)
			}
			if !sc.edgeOn[a.EID] {
				continue
			}
		traverse:
			sc.nodeEp[a.To] = sc.epoch
			if a.To == t {
				return true
			}
			if counts != nil {
				counts[a.To]++
			}
			sc.queue = append(sc.queue, a.To)
		}
	}
	return false
}

func refDeterministicReach(sc *refScratch, g *ugraph.Graph, src ugraph.NodeID, forward bool, status []int8, optimistic bool) []ugraph.NodeID {
	sc.nextEpoch()
	sc.queue = sc.queue[:0]
	sc.queue = append(sc.queue, src)
	sc.nodeEp[src] = sc.epoch
	for head := 0; head < len(sc.queue); head++ {
		u := sc.queue[head]
		var arcs []ugraph.Arc
		if forward {
			arcs = g.Out(u)
		} else {
			arcs = g.In(u)
		}
		for _, a := range arcs {
			if sc.nodeEp[a.To] == sc.epoch {
				continue
			}
			st := status[a.EID]
			if st == 1 || (optimistic && st == 0) {
				sc.nodeEp[a.To] = sc.epoch
				sc.queue = append(sc.queue, a.To)
			}
		}
	}
	return sc.queue
}

// refMonteCarlo is the legacy MonteCarlo sampler.
type refMonteCarlo struct {
	z  int
	r  *rand.Rand
	sc refScratch
}

func newRefMonteCarlo(z int, seed int64) *refMonteCarlo {
	return &refMonteCarlo{z: z, r: rng.New(seed)}
}

func (mc *refMonteCarlo) Reliability(g *ugraph.Graph, s, t ugraph.NodeID) float64 {
	if s == t {
		return 1
	}
	mc.sc.reset(g.N(), g.M())
	hits := 0
	for i := 0; i < mc.z; i++ {
		if refSampledWalk(&mc.sc, mc.r, g, s, t, true, nil, nil) {
			hits++
		}
	}
	return float64(hits) / float64(mc.z)
}

func (mc *refMonteCarlo) ReliabilityFrom(g *ugraph.Graph, s ugraph.NodeID) []float64 {
	return mc.vector(g, s, true)
}

func (mc *refMonteCarlo) ReliabilityTo(g *ugraph.Graph, t ugraph.NodeID) []float64 {
	return mc.vector(g, t, false)
}

func (mc *refMonteCarlo) vector(g *ugraph.Graph, src ugraph.NodeID, forward bool) []float64 {
	mc.sc.reset(g.N(), g.M())
	counts := make([]float64, g.N())
	for i := 0; i < mc.z; i++ {
		refSampledWalk(&mc.sc, mc.r, g, src, -1, forward, counts, nil)
	}
	inv := 1 / float64(mc.z)
	for i := range counts {
		counts[i] *= inv
	}
	return counts
}

// refRSS is the legacy RSS sampler (slice-allocating boundary collection).
type refRSS struct {
	z         int
	width     int
	threshold int
	r         *rand.Rand
	sc        refScratch
	status    []int8
}

func newRefRSS(z int, seed int64) *refRSS {
	return &refRSS{z: z, width: DefaultRSSWidth, threshold: DefaultRSSThreshold, r: rng.New(seed)}
}

func (rs *refRSS) prepare(g *ugraph.Graph) {
	rs.sc.reset(g.N(), g.M())
	if cap(rs.status) < g.M() {
		rs.status = make([]int8, g.M())
	}
	rs.status = rs.status[:g.M()]
	for i := range rs.status {
		rs.status[i] = 0
	}
}

func (rs *refRSS) Reliability(g *ugraph.Graph, s, t ugraph.NodeID) float64 {
	if s == t {
		return 1
	}
	rs.prepare(g)
	return rs.recurse(g, s, t, rs.z)
}

func (rs *refRSS) ReliabilityFrom(g *ugraph.Graph, s ugraph.NodeID) []float64 {
	acc := make([]float64, g.N())
	rs.prepare(g)
	rs.recurseVec(g, s, true, rs.z, 1.0, acc)
	return acc
}

func (rs *refRSS) ReliabilityTo(g *ugraph.Graph, t ugraph.NodeID) []float64 {
	acc := make([]float64, g.N())
	rs.prepare(g)
	rs.recurseVec(g, t, false, rs.z, 1.0, acc)
	return acc
}

func (rs *refRSS) boundary(g *ugraph.Graph, reach []ugraph.NodeID, forward bool) []int32 {
	var edges []int32
	for _, u := range reach {
		var arcs []ugraph.Arc
		if forward {
			arcs = g.Out(u)
		} else {
			arcs = g.In(u)
		}
		for _, a := range arcs {
			if rs.sc.nodeEp[a.To] == rs.sc.epoch {
				continue
			}
			if rs.status[a.EID] != 0 {
				continue
			}
			edges = append(edges, a.EID)
			if len(edges) >= rs.width {
				return edges
			}
		}
	}
	return edges
}

func (rs *refRSS) recurse(g *ugraph.Graph, s, t ugraph.NodeID, budget int) float64 {
	reach := refDeterministicReach(&rs.sc, g, s, true, rs.status, false)
	if rs.sc.nodeEp[t] == rs.sc.epoch {
		return 1
	}
	edges := rs.boundary(g, reach, true)
	if len(edges) == 0 {
		return 0
	}
	refDeterministicReach(&rs.sc, g, s, true, rs.status, true)
	if rs.sc.nodeEp[t] != rs.sc.epoch {
		return 0
	}
	if budget <= rs.threshold {
		z := budget
		if z < 1 {
			z = 1
		}
		hits := 0
		for i := 0; i < z; i++ {
			if refSampledWalk(&rs.sc, rs.r, g, s, t, true, nil, rs.status) {
				hits++
			}
		}
		return float64(hits) / float64(z)
	}
	total := 0.0
	remaining := 1.0
	for i := 0; i <= len(edges); i++ {
		var pi float64
		if i < len(edges) {
			p := g.Prob(edges[i])
			pi = remaining * p
			rs.status[edges[i]] = 1
		} else {
			pi = remaining
		}
		if pi > 0 {
			total += pi * rs.recurse(g, s, t, int(pi*float64(budget)+0.5))
		}
		if i < len(edges) {
			rs.status[edges[i]] = -1
			remaining *= 1 - g.Prob(edges[i])
		}
	}
	for _, eid := range edges {
		rs.status[eid] = 0
	}
	return total
}

func (rs *refRSS) recurseVec(g *ugraph.Graph, src ugraph.NodeID, forward bool, budget int, weight float64, acc []float64) {
	reach := refDeterministicReach(&rs.sc, g, src, forward, rs.status, false)
	edges := rs.boundary(g, reach, forward)
	if len(edges) == 0 {
		for _, v := range reach {
			acc[v] += weight
		}
		return
	}
	if budget <= rs.threshold {
		z := budget
		if z < 1 {
			z = 1
		}
		w := weight / float64(z)
		for i := 0; i < z; i++ {
			refSampledWalk(&rs.sc, rs.r, g, src, -1, forward, nil, rs.status)
			for _, v := range rs.sc.queue {
				acc[v] += w
			}
		}
		return
	}
	remaining := 1.0
	for i := 0; i <= len(edges); i++ {
		var pi float64
		if i < len(edges) {
			pi = remaining * g.Prob(edges[i])
			rs.status[edges[i]] = 1
		} else {
			pi = remaining
		}
		if pi > 0 {
			rs.recurseVec(g, src, forward, int(pi*float64(budget)+0.5), weight*pi, acc)
		}
		if i < len(edges) {
			rs.status[edges[i]] = -1
			remaining *= 1 - g.Prob(edges[i])
		}
	}
	for _, eid := range edges {
		rs.status[eid] = 0
	}
}

// refLazy is the legacy lazy-propagation sampler.
type refLazy struct {
	z      int
	r      *rand.Rand
	sc     refScratch
	nextOn []int64
	sample int64
}

func newRefLazy(z int, seed int64) *refLazy {
	return &refLazy{z: z, r: rng.New(seed)}
}

func (lz *refLazy) geometricSkip(p float64) int64 {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return math.MaxInt64 / 4
	}
	u := lz.r.Float64()
	skip := int64(math.Ceil(math.Log(1-u) / math.Log(1-p)))
	if skip < 1 {
		skip = 1
	}
	return skip
}

func (lz *refLazy) prepare(g *ugraph.Graph) {
	lz.sc.reset(g.N(), g.M())
	if cap(lz.nextOn) < g.M() {
		lz.nextOn = make([]int64, g.M())
	}
	lz.nextOn = lz.nextOn[:g.M()]
	for i := range lz.nextOn {
		lz.nextOn[i] = 0
	}
	lz.sample = 0
}

func (lz *refLazy) present(g *ugraph.Graph, eid int32) bool {
	next := lz.nextOn[eid]
	if next == 0 {
		next = lz.sample - 1 + lz.geometricSkip(g.Prob(eid))
	}
	for next < lz.sample {
		next += lz.geometricSkip(g.Prob(eid))
	}
	lz.nextOn[eid] = next
	return next == lz.sample
}

func (lz *refLazy) Reliability(g *ugraph.Graph, s, t ugraph.NodeID) float64 {
	if s == t {
		return 1
	}
	lz.prepare(g)
	hits := 0
	for i := 0; i < lz.z; i++ {
		lz.sample++
		if lz.walk(g, s, t, true, nil) {
			hits++
		}
	}
	return float64(hits) / float64(lz.z)
}

func (lz *refLazy) ReliabilityFrom(g *ugraph.Graph, s ugraph.NodeID) []float64 {
	return lz.vector(g, s, true)
}

func (lz *refLazy) ReliabilityTo(g *ugraph.Graph, t ugraph.NodeID) []float64 {
	return lz.vector(g, t, false)
}

func (lz *refLazy) vector(g *ugraph.Graph, src ugraph.NodeID, forward bool) []float64 {
	lz.prepare(g)
	counts := make([]float64, g.N())
	for i := 0; i < lz.z; i++ {
		lz.sample++
		lz.walk(g, src, -1, forward, counts)
	}
	inv := 1 / float64(lz.z)
	for i := range counts {
		counts[i] *= inv
	}
	return counts
}

func (lz *refLazy) walk(g *ugraph.Graph, src, t ugraph.NodeID, forward bool, counts []float64) bool {
	sc := &lz.sc
	sc.nextEpoch()
	sc.queue = sc.queue[:0]
	sc.queue = append(sc.queue, src)
	sc.nodeEp[src] = sc.epoch
	if counts != nil {
		counts[src]++
	}
	for head := 0; head < len(sc.queue); head++ {
		u := sc.queue[head]
		var arcs []ugraph.Arc
		if forward {
			arcs = g.Out(u)
		} else {
			arcs = g.In(u)
		}
		for _, a := range arcs {
			if sc.nodeEp[a.To] == sc.epoch {
				continue
			}
			if sc.edgeEp[a.EID] != sc.epoch {
				sc.edgeEp[a.EID] = sc.epoch
				sc.edgeOn[a.EID] = lz.present(g, a.EID)
			}
			if !sc.edgeOn[a.EID] {
				continue
			}
			sc.nodeEp[a.To] = sc.epoch
			if a.To == t {
				return true
			}
			if counts != nil {
				counts[a.To]++
			}
			sc.queue = append(sc.queue, a.To)
		}
	}
	return false
}
