package sampling

// Differential tests: the CSR-based estimators must be BIT-IDENTICAL to
// the legacy slice-of-slices engine (reference_test.go) at the same seed —
// for directed and undirected graphs, scalar and vector estimates, base
// snapshots and WithEdges overlays, serially and at every worker count.

import (
	"math/rand"
	"testing"

	"repro/internal/rng"
	"repro/internal/ugraph"
)

// randomDiffGraph builds graphs larger than randomSmallGraph (no exact
// solver needed here), mixing p=0 and p=1 edges and exercising rejected
// duplicate/self-loop inserts.
func randomDiffGraph(r *rand.Rand, directed bool) *ugraph.Graph {
	n := 6 + r.Intn(40)
	g := ugraph.New(n, directed)
	attempts := 3 * n
	for i := 0; i < attempts; i++ {
		u := ugraph.NodeID(r.Intn(n))
		v := ugraph.NodeID(r.Intn(n))
		var p float64
		switch r.Intn(6) {
		case 0:
			p = 0
		case 1:
			p = 1
		default:
			p = r.Float64()
		}
		g.AddEdge(u, v, p) //nolint:errcheck // rejections are part of the test
	}
	return g
}

type refSampler interface {
	Reliability(g *ugraph.Graph, s, t ugraph.NodeID) float64
	ReliabilityFrom(g *ugraph.Graph, s ugraph.NodeID) []float64
	ReliabilityTo(g *ugraph.Graph, t ugraph.NodeID) []float64
}

func newRef(kind string, z int, seed int64) refSampler {
	switch kind {
	case "mc":
		return newRefMonteCarlo(z, seed)
	case "rss":
		return newRefRSS(z, seed)
	default:
		return newRefLazy(z, seed)
	}
}

func newLive(t *testing.T, kind string, z int, seed int64) Sampler {
	t.Helper()
	switch kind {
	case "mc":
		return NewMonteCarlo(z, seed)
	case "rss":
		return NewRSS(z, seed)
	case "lazy":
		return NewLazy(z, seed)
	}
	t.Fatalf("unknown kind %q", kind)
	return nil
}

// TestSamplersBitIdenticalToReference drives the live CSR engine and the
// legacy engine through an identical call sequence (the RNG stream carries
// across calls, so sequence position matters) and demands exact equality.
func TestSamplersBitIdenticalToReference(t *testing.T) {
	for _, kind := range []string{"mc", "rss", "lazy"} {
		r := rng.New(11)
		for trial := 0; trial < 8; trial++ {
			directed := trial%2 == 0
			g := randomDiffGraph(r, directed)
			s, tt := ugraph.NodeID(0), ugraph.NodeID(g.N()-1)
			seed := int64(100 + trial)
			live := newLive(t, kind, 400, seed)
			ref := newRef(kind, 400, seed)
			for round := 0; round < 2; round++ {
				if a, b := live.Reliability(g, s, tt), ref.Reliability(g, s, tt); a != b {
					t.Fatalf("%s trial %d round %d: Reliability CSR=%v legacy=%v", kind, trial, round, a, b)
				}
				if a, b := live.ReliabilityFrom(g, s), ref.ReliabilityFrom(g, s); !equalVec(a, b) {
					t.Fatalf("%s trial %d round %d: ReliabilityFrom differs", kind, trial, round)
				}
				if a, b := live.ReliabilityTo(g, tt), ref.ReliabilityTo(g, tt); !equalVec(a, b) {
					t.Fatalf("%s trial %d round %d: ReliabilityTo differs", kind, trial, round)
				}
			}
		}
	}
}

// TestOverlayEstimatesBitIdentical checks the candidate-evaluation fast
// path: estimating on a WithEdges CSR overlay must equal (bit for bit)
// estimating on the fully cloned-and-refrozen graph, and equal the legacy
// engine on that clone.
func TestOverlayEstimatesBitIdentical(t *testing.T) {
	for _, kind := range []string{"mc", "rss", "lazy"} {
		r := rng.New(22)
		for trial := 0; trial < 6; trial++ {
			directed := trial%2 == 1
			g := randomDiffGraph(r, directed)
			n := g.N()
			var extra []ugraph.Edge
			for len(extra) < 3 {
				u := ugraph.NodeID(r.Intn(n))
				v := ugraph.NodeID(r.Intn(n))
				if u != v {
					extra = append(extra, ugraph.Edge{U: u, V: v, P: 0.1 + 0.8*r.Float64()})
				}
			}
			s, tt := ugraph.NodeID(0), ugraph.NodeID(n-1)
			seed := int64(7 * (trial + 1))
			overlay := g.Freeze().WithEdges(extra)
			clone := g.WithEdges(extra)

			cs := newLive(t, kind, 300, seed).(CSRSampler)
			onOverlay := cs.ReliabilityCSR(overlay, s, tt)
			onClone := newLive(t, kind, 300, seed).Reliability(clone, s, tt)
			legacy := newRef(kind, 300, seed).Reliability(clone, s, tt)
			if onOverlay != onClone || onOverlay != legacy {
				t.Fatalf("%s trial %d: overlay=%v clone=%v legacy=%v", kind, trial, onOverlay, onClone, legacy)
			}

			cs.Reseed(seed)
			fromOverlay := cs.ReliabilityFromCSR(overlay, s)
			fromLegacy := newRef(kind, 300, seed).ReliabilityFrom(clone, s)
			if !equalVec(fromOverlay, fromLegacy) {
				t.Fatalf("%s trial %d: overlay ReliabilityFrom differs from legacy clone", kind, trial)
			}
			cs.Reseed(seed)
			toOverlay := cs.ReliabilityToCSR(overlay, tt)
			toLegacy := newRef(kind, 300, seed).ReliabilityTo(clone, tt)
			if !equalVec(toOverlay, toLegacy) {
				t.Fatalf("%s trial %d: overlay ReliabilityTo differs from legacy clone", kind, trial)
			}
		}
	}
}

// TestMultiSourceBitIdentical covers the influence-layer walks (multi-
// source reach and expected pair hops) against the reference engine via
// the property that a frozen base snapshot must estimate identically to
// the legacy Graph path — both consume the same RNG stream.
func TestMultiSourceBitIdentical(t *testing.T) {
	r := rng.New(33)
	for trial := 0; trial < 6; trial++ {
		g := randomDiffGraph(r, trial%2 == 0)
		sources := []ugraph.NodeID{0, ugraph.NodeID(g.N() / 2)}
		targets := []ugraph.NodeID{ugraph.NodeID(g.N() - 1)}
		seed := int64(40 + trial)

		a := NewMonteCarlo(200, seed).MultiSourceReach(g, sources)
		b := NewMonteCarlo(200, seed).MultiSourceReachCSR(g.Freeze(), sources)
		if !equalVec(a, b) {
			t.Fatalf("trial %d: MultiSourceReach Graph vs CSR differ", trial)
		}

		h1 := NewMonteCarlo(100, seed).ExpectedPairHops(g, sources, targets, float64(g.N()))
		h2 := NewMonteCarlo(100, seed).ExpectedPairHopsCSR(g.Freeze(), sources, targets, float64(g.N()))
		if h1 != h2 {
			t.Fatalf("trial %d: ExpectedPairHops Graph=%v CSR=%v", trial, h1, h2)
		}
	}
}

// TestParallelCSREntryPoints checks ParallelSampler's CSRSampler facade:
// snapshot-level calls must be bit-identical to the Graph-level calls at
// the same call index, at every worker count.
func TestParallelCSREntryPoints(t *testing.T) {
	r := rng.New(44)
	g := randomDiffGraph(r, true)
	s, tt := ugraph.NodeID(0), ugraph.NodeID(g.N()-1)
	for _, workers := range []int{1, 2, 4, 8} {
		viaGraph := newParallelT(t, "mc", 500, 9, workers)
		viaCSR := newParallelT(t, "mc", 500, 9, workers)
		c := g.Freeze()
		if a, b := viaGraph.Reliability(g, s, tt), viaCSR.ReliabilityCSR(c, s, tt); a != b {
			t.Fatalf("w%d: Reliability Graph=%v CSR=%v", workers, a, b)
		}
		if a, b := viaGraph.ReliabilityFrom(g, s), viaCSR.ReliabilityFromCSR(c, s); !equalVec(a, b) {
			t.Fatalf("w%d: ReliabilityFrom Graph vs CSR differ", workers)
		}
		if a, b := viaGraph.ReliabilityTo(g, tt), viaCSR.ReliabilityToCSR(c, tt); !equalVec(a, b) {
			t.Fatalf("w%d: ReliabilityTo Graph vs CSR differ", workers)
		}
	}
}

// TestScratchReuseAcrossGrowingGraphs is the regression test for the
// stale-epoch-mark bug: estimating on a graph, then on a view with more
// edges (the EstimateEdges overlay shape), reallocates the edge-state
// array and restarts the epoch counter — the node-mark array must be
// cleared too, or reused low epochs collide with stale marks and the BFS
// silently skips unvisited nodes. A reused sampler must therefore return
// exactly what a fresh sampler returns at the same seed.
func TestScratchReuseAcrossGrowingGraphs(t *testing.T) {
	// smallM: more nodes than bigM but fewer edges, so moving from it to
	// bigM reallocates ONLY the edge-state array — the shape that used to
	// restart the epoch counter while nodeEp kept its stale marks. The
	// warm-up estimate uses a tiny budget: a node's stale mark is the last
	// walk that visited it, so low-numbered marks (which reused low epochs
	// collide with) survive only when the warm-up ran few walks.
	smallM := ugraph.New(50, false)
	for v := ugraph.NodeID(1); v < 50; v++ {
		smallM.MustAddEdge(0, v, 0.5)
	}
	// Low per-edge probability keeps R(0, 29) mid-range: a near-certain
	// query would return exactly 1.0 from corrupted and clean runs alike,
	// and the test would have no discriminating power.
	bigM := ugraph.New(30, false)
	for u := ugraph.NodeID(0); u < 30; u++ {
		for v := u + 1; v < 30; v++ {
			bigM.MustAddEdge(u, v, 0.05)
		}
	}
	if bigM.M() <= smallM.M() || bigM.N() >= smallM.N() {
		t.Fatal("test graphs lost their edge/node-growth shape")
	}
	for _, kind := range []string{"mc", "rss", "lazy"} {
		reused := newLive(t, kind, 1, 1)
		reused.Reliability(smallM, 0, 49) // one walk: marks stay low
		reused.SetSampleSize(600)
		reused.Reseed(9)
		got := reused.Reliability(bigM, 0, 29)
		want := newLive(t, kind, 600, 9).Reliability(bigM, 0, 29)
		if want <= 0.02 || want >= 0.98 {
			t.Fatalf("%s: R=%v too extreme — the test has no discriminating power", kind, want)
		}
		if got != want {
			t.Errorf("%s: reused sampler %v != fresh sampler %v after edge-only growth", kind, got, want)
		}
		// The overlay shape of the same bug: a one-walk base estimate at
		// M, then a full overlay estimate at M+1 on the same sampler.
		cs := newLive(t, kind, 1, 2).(CSRSampler)
		base := bigM.Freeze()
		cs.ReliabilityCSR(base, 0, 29)
		view := base.WithEdges([]ugraph.Edge{{U: 0, V: 29, P: 0.4}})
		cs.SetSampleSize(600)
		cs.Reseed(13)
		got = cs.ReliabilityCSR(view, 0, 29)
		fresh := newLive(t, kind, 600, 13).(CSRSampler)
		if want = fresh.ReliabilityCSR(view, 0, 29); got != want {
			t.Errorf("%s: reused sampler %v != fresh sampler %v on overlay view", kind, got, want)
		}
	}
}

// TestBuiltinsImplementCSRSampler pins the interface relationship the
// solver fast paths rely on.
func TestBuiltinsImplementCSRSampler(t *testing.T) {
	for _, smp := range []Sampler{NewMonteCarlo(1, 1), NewRSS(1, 1), NewLazy(1, 1)} {
		if _, ok := smp.(CSRSampler); !ok {
			t.Errorf("%s does not implement CSRSampler", smp.Name())
		}
	}
	if _, ok := Sampler(newParallelT(t, "rss", 10, 1, 2)).(CSRSampler); !ok {
		t.Error("ParallelSampler does not implement CSRSampler")
	}
}
