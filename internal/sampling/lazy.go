package sampling

import (
	"math"
	"math/rand"

	"repro/internal/rng"
	"repro/internal/ugraph"
)

// Lazy is a Monte Carlo variant using lazy propagation (after Li et al.,
// SIGMOD'17, cited in §7): instead of flipping a Bernoulli coin every time
// an edge is examined, each edge remembers the next sample index at which
// it will be present, drawn from a geometric distribution. Edges examined
// in many consecutive samples are then decided with one comparison instead
// of one RNG call per sample, which pays off on hub-heavy graphs where the
// BFS repeatedly probes the same high-degree frontier.
//
// The estimate is distributed identically to MonteCarlo's: per sample, an
// edge is present with exactly probability p.
type Lazy struct {
	z  int
	r  *rand.Rand
	sc scratch
	// nextOn[eid] is the next sample index (1-based) at which the edge
	// will be present; 0 means not yet initialized for this query.
	nextOn []int64
	sample int64
	canceller
}

// NewLazy returns a lazy-propagation sampler drawing z worlds per query.
func NewLazy(z int, seed int64) *Lazy {
	return &Lazy{z: z, r: rng.New(seed)}
}

// Name implements Sampler.
func (lz *Lazy) Name() string { return "lazy" }

// SampleSize implements Sampler.
func (lz *Lazy) SampleSize() int { return lz.z }

// SetSampleSize implements Sampler.
func (lz *Lazy) SetSampleSize(z int) { lz.z = z }

// Reseed implements Sampler. The geometric schedules are per-query state
// (reset by prepare), so restoring the RNG stream is sufficient.
func (lz *Lazy) Reseed(seed int64) { lz.r.Seed(seed) }

// geometricSkip draws the number of additional samples until the edge is
// next present: Geometric(p) with support {1, 2, ...}. For p = 1 the edge
// is present every sample; for p = 0 it is never present (represented by a
// huge skip).
func (lz *Lazy) geometricSkip(p float64) int64 {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return math.MaxInt64 / 4
	}
	u := lz.r.Float64()
	skip := int64(math.Ceil(math.Log(1-u) / math.Log(1-p)))
	if skip < 1 {
		skip = 1
	}
	return skip
}

func (lz *Lazy) prepare(c *ugraph.CSR) {
	lz.sc.reset(c.N(), c.EdgeIDBound())
	if cap(lz.nextOn) < c.EdgeIDBound() {
		lz.nextOn = make([]int64, c.EdgeIDBound())
	}
	lz.nextOn = lz.nextOn[:c.EdgeIDBound()]
	for i := range lz.nextOn {
		lz.nextOn[i] = 0
	}
	lz.sample = 0
}

// present decides the edge's state in the current sample, advancing its
// geometric schedule as needed; p is the edge's probability (handed in by
// the walk from the arc-aligned stream). Called at most once per
// (edge, sample); the caller memoizes via the epoch arrays.
func (lz *Lazy) present(p float64, eid int32) bool {
	next := lz.nextOn[eid]
	if next == 0 {
		// First examination ever: schedule relative to the sample
		// before this one.
		next = lz.sample - 1 + lz.geometricSkip(p)
	}
	for next < lz.sample {
		next += lz.geometricSkip(p)
	}
	lz.nextOn[eid] = next
	return next == lz.sample
}

// Reliability implements Sampler.
func (lz *Lazy) Reliability(g *ugraph.Graph, s, t ugraph.NodeID) float64 {
	return lz.ReliabilityCSR(g.Freeze(), s, t)
}

// ReliabilityCSR implements CSRSampler.
func (lz *Lazy) ReliabilityCSR(c *ugraph.CSR, s, t ugraph.NodeID) float64 {
	if s == t {
		return 1
	}
	lz.prepare(c)
	hits := 0
	for i := 0; i < lz.z; i++ {
		if i&(ctxCheckBlock-1) == 0 && lz.cancelled() {
			if i == 0 {
				return 0
			}
			return float64(hits) / float64(i)
		}
		lz.sample++
		if lz.walk(c, s, t, true, nil) {
			hits++
		}
	}
	return float64(hits) / float64(lz.z)
}

// ReliabilityFrom implements Sampler.
func (lz *Lazy) ReliabilityFrom(g *ugraph.Graph, s ugraph.NodeID) []float64 {
	return lz.vector(g.Freeze(), s, true)
}

// ReliabilityTo implements Sampler.
func (lz *Lazy) ReliabilityTo(g *ugraph.Graph, t ugraph.NodeID) []float64 {
	return lz.vector(g.Freeze(), t, false)
}

// ReliabilityFromCSR implements CSRSampler.
func (lz *Lazy) ReliabilityFromCSR(c *ugraph.CSR, s ugraph.NodeID) []float64 {
	return lz.vector(c, s, true)
}

// ReliabilityToCSR implements CSRSampler.
func (lz *Lazy) ReliabilityToCSR(c *ugraph.CSR, t ugraph.NodeID) []float64 {
	return lz.vector(c, t, false)
}

func (lz *Lazy) vector(c *ugraph.CSR, src ugraph.NodeID, forward bool) []float64 {
	lz.prepare(c)
	counts := make([]float64, c.N())
	drawn := lz.z
	for i := 0; i < lz.z; i++ {
		if i&(ctxCheckBlock-1) == 0 && lz.cancelled() {
			drawn = i
			break
		}
		lz.sample++
		lz.walk(c, src, -1, forward, counts)
	}
	if drawn == 0 {
		return counts
	}
	inv := 1 / float64(drawn)
	for i := range counts {
		counts[i] *= inv
	}
	return counts
}

// walk mirrors sampledWalk but consults the geometric schedule. There is a
// subtlety shared with the plain sampler: an edge's state must be decided
// at most once per sample, which the epoch memo guarantees — otherwise the
// geometric schedule would advance twice.
func (lz *Lazy) walk(c *ugraph.CSR, src, t ugraph.NodeID, forward bool, counts []float64) bool {
	sc := &lz.sc
	sc.nextEpoch()
	sc.queue = sc.queue[:0]
	sc.queue = append(sc.queue, src)
	sc.nodeEp[src] = sc.epoch
	if counts != nil {
		counts[src]++
	}
	hasX := c.HasOverlay()
	for head := 0; head < len(sc.queue); head++ {
		u := sc.queue[head]
		var arcs, extra []ugraph.Arc
		var probs, xprobs []float64
		if forward {
			arcs, probs = c.Out(u), c.OutProbs(u)
			if hasX {
				extra, xprobs = c.OutOverlay(u), c.OutOverlayProbs(u)
			}
		} else {
			arcs, probs = c.In(u), c.InProbs(u)
			if hasX {
				extra, xprobs = c.InOverlay(u), c.InOverlayProbs(u)
			}
		}
		for {
			for i, a := range arcs {
				if sc.nodeEp[a.To] == sc.epoch {
					continue
				}
				if st := sc.edgeSt[a.EID]; st != sc.epoch && st != -sc.epoch {
					if lz.present(probs[i], a.EID) {
						sc.edgeSt[a.EID] = sc.epoch
					} else {
						sc.edgeSt[a.EID] = -sc.epoch
						continue
					}
				} else if st != sc.epoch {
					continue
				}
				sc.nodeEp[a.To] = sc.epoch
				if a.To == t {
					return true
				}
				if counts != nil {
					counts[a.To]++
				}
				sc.queue = append(sc.queue, a.To)
			}
			if len(extra) == 0 {
				break
			}
			arcs, probs, extra = extra, xprobs, nil
		}
	}
	return false
}
