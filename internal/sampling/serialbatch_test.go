package sampling

import (
	"context"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/ugraph"
)

// serialBatchGraph builds a deterministic sparse random graph for the
// serial-batch differential tests.
func serialBatchGraph(n, m int, directed bool, seed int64) *ugraph.Graph {
	r := rng.New(seed)
	g := ugraph.New(n, directed)
	for attempts := 0; attempts < 20*m && g.M() < m; attempts++ {
		u := ugraph.NodeID(r.Intn(n))
		v := ugraph.NodeID(r.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 0.2+0.6*r.Float64())
	}
	return g
}

// TestEstimateManySerialBitIdentity pins the scheduling-independence
// contract: the sharded execution must be bit-identical to the in-order
// workers=1 path (and to a hand-rolled reference that reseeds a fresh
// serial sampler per query) at every worker count, for every kind.
func TestEstimateManySerialBitIdentity(t *testing.T) {
	g := serialBatchGraph(64, 160, false, 11)
	c := g.Freeze()
	queries := []PairQuery{
		{S: 0, T: 9}, {S: 1, T: 22}, {S: 4, T: 4}, {S: 7, T: 60},
		{S: 9, T: 0}, {S: 3, T: 33}, {S: 12, T: 48}, {S: 2, T: 2},
	}
	const z, seed = 300, 17
	for _, kind := range []string{"mc", "rss", "lazy"} {
		ss, err := NewSharedScratch(kind)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: one fresh serial sampler, reseeded per query in order.
		ref := make([]float64, len(queries))
		smp, err := NewSerial(kind, z, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			if q.S == q.T {
				ref[i] = 1
				continue
			}
			smp.Reseed(rng.SplitSeed(seed, int64(i)))
			ref[i] = smp.(CSRSampler).ReliabilityCSR(c, q.S, q.T)
		}
		for _, workers := range []int{1, 2, 4, 8, -1} {
			got := EstimateManySerial(context.Background(), ss, c, queries, z, seed, workers)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("kind=%s workers=%d: query %d = %v, reference %v", kind, workers, i, got[i], ref[i])
				}
			}
		}
		// Warm-pool reuse must not perturb a repeated call.
		again := EstimateManySerial(context.Background(), ss, c, queries, z, seed, 4)
		for i := range ref {
			if again[i] != ref[i] {
				t.Fatalf("kind=%s: warm repeat diverged at %d: %v vs %v", kind, i, again[i], ref[i])
			}
		}
	}
}

// TestEstimateManySerialCancellation: a cancelled batch returns promptly
// (the caller is responsible for observing ctx.Err() and discarding the
// partial output).
func TestEstimateManySerialCancellation(t *testing.T) {
	g := serialBatchGraph(256, 1024, false, 3)
	c := g.Freeze()
	ss, err := NewSharedScratch("mc")
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]PairQuery, 64)
	for i := range queries {
		queries[i] = PairQuery{S: 0, T: ugraph.NodeID(1 + i%200)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_ = EstimateManySerial(ctx, ss, c, queries, 5_000_000, 1, 4)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled batch took %v", elapsed)
	}
}

// TestEstimateManySerialEmpty covers the trivial shapes.
func TestEstimateManySerialEmpty(t *testing.T) {
	ss, err := NewSharedScratch("rss")
	if err != nil {
		t.Fatal(err)
	}
	g := serialBatchGraph(8, 12, false, 2)
	if out := EstimateManySerial(context.Background(), ss, g.Freeze(), nil, 100, 1, 4); out != nil {
		t.Fatalf("empty batch returned %v", out)
	}
}
