package sampling

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
	"repro/internal/ugraph"
)

// DefaultShards is the maximum number of deterministic work shards a
// ParallelSampler splits a sample budget into (small budgets use fewer;
// see minShardBudget). The shard structure — not the worker count — fixes
// the randomness: shard i always draws from the stream Split(callSeed, i)
// and the shard estimates are merged in shard order, so the result is
// bit-identical whether one goroutine processes all shards or eight
// goroutines race over them.
const DefaultShards = 16

// Factory constructs a fresh serial Sampler; the budget and seed handed to
// it are placeholders, overwritten per shard via SetSampleSize and Reseed.
// Factories returning a CSRSampler (all built-in ones do) let the pool run
// entirely on frozen snapshots; other samplers fall back to the Graph path.
type Factory func(z int, seed int64) Sampler

// ParallelSampler runs a serial estimator's sample budget across a worker
// pool. It is safe for concurrent use: every public call freezes the graph
// once (a cached CSR snapshot), atomically claims a call index (which
// decorrelates successive calls, mirroring the advancing RNG state of a
// serial sampler), takes per-worker serial samplers from an internal pool,
// and merges per-shard results in a fixed order. For a given seed the i-th
// call returns bit-identical results at any worker count; concurrent
// callers are race-free but observe call indices in arrival order.
type ParallelSampler struct {
	name    string
	factory Factory
	workers int
	shards  int
	// quantum is the underlying estimator's preferred budget granularity
	// (64 for mcvec's lane blocks, 1 for the scalar kinds): shard budgets
	// are multiples of it except the last, which absorbs the tail.
	quantum int
	seed    atomic.Int64
	z       atomic.Int64
	call    atomic.Int64
	// pool leases the per-worker serial samplers. It is a pointer so that
	// request-scoped ParallelSamplers derived by an Engine can share one
	// warm pool (NewParallelShared) — the leased samplers' scratch arrays
	// stay sized to the graph across requests instead of being rebuilt.
	pool *sync.Pool
	canceller
}

// factoryFor maps an estimator kind ("mc", "rss", "lazy" or "mcvec") to
// its serial factory.
func factoryFor(kind string) (Factory, error) {
	switch kind {
	case "mc":
		return func(z int, seed int64) Sampler { return NewMonteCarlo(z, seed) }, nil
	case "rss":
		return func(z int, seed int64) Sampler { return NewRSS(z, seed) }, nil
	case "lazy":
		return func(z int, seed int64) Sampler { return NewLazy(z, seed) }, nil
	case "mcvec":
		return func(z int, seed int64) Sampler { return NewMCVec(z, seed) }, nil
	default:
		return nil, fmt.Errorf("sampling: unknown sampler %q (want mc, rss, lazy or mcvec)", kind)
	}
}

// KnownKind reports whether kind names a built-in estimator ("mc", "rss",
// "lazy" or "mcvec") — the validation the Engine's query canonicalization
// uses to reject unknown sampler overrides before any work is queued.
func KnownKind(kind string) bool {
	_, err := factoryFor(kind)
	return err == nil
}

// budgetQuantizer is implemented by estimators whose work comes in fixed
// sample-count blocks (MCVec's 64 lane worlds): ParallelSampler aligns
// shard budgets to the quantum so interior shards run whole blocks and only
// the final shard carries the z % quantum tail.
type budgetQuantizer interface {
	budgetQuantum() int
}

// quantumOf probes a factory for the estimator's budget quantum (1 for the
// scalar samplers). The probe sampler is returned to the caller for pool
// seeding so the construction-time allocation is not wasted.
func quantumOf(factory Factory) (int, Sampler) {
	probe := factory(1, 0)
	if q, ok := probe.(budgetQuantizer); ok {
		return q.budgetQuantum(), probe
	}
	return 1, probe
}

// NewSerial constructs a serial sampler of the named kind ("mc", "rss",
// "lazy" or "mcvec") — the single-goroutine counterpart of NewParallel. On
// error the returned interface is nil (never a typed-nil concrete pointer),
// so `smp == nil` is a valid failure check.
func NewSerial(kind string, z int, seed int64) (Sampler, error) {
	factory, err := factoryFor(kind)
	if err != nil {
		return nil, err
	}
	return factory(z, seed), nil
}

// NewParallel wraps the named estimator kind ("mc", "rss", "lazy" or
// "mcvec") in a ParallelSampler with total budget z. workers <= 0 selects
// runtime.GOMAXPROCS(0).
func NewParallel(kind string, z int, seed int64, workers int) (*ParallelSampler, error) {
	factory, err := factoryFor(kind)
	if err != nil {
		return nil, err
	}
	return NewParallelWith(kind, factory, z, seed, workers), nil
}

// NewParallelWith wraps an arbitrary serial-sampler factory. The name is
// what Name() reports (conventionally the underlying estimator's name).
func NewParallelWith(name string, factory Factory, z int, seed int64, workers int) *ParallelSampler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ps := &ParallelSampler{name: name, factory: factory, workers: workers, shards: DefaultShards}
	ps.seed.Store(seed)
	ps.z.Store(int64(z))
	quantum, probe := quantumOf(factory)
	ps.quantum = quantum
	ps.pool = &sync.Pool{New: func() any { return factory(1, 0) }}
	ps.pool.Put(probe)
	return ps
}

// SharedScratch is a warm, goroutine-safe pool of serial samplers for one
// estimator kind. ParallelSamplers built over it (NewParallelShared) lease
// their per-worker samplers from the shared pool instead of a private one,
// so a long-lived Engine serving many requests reuses the samplers' scratch
// arrays (epoch-stamped visited/edge-state buffers, RSS arenas) across
// requests. Sharing never affects results: every leased sampler is fully
// reconfigured (Reseed + SetSampleSize + SetContext) before estimating.
type SharedScratch struct {
	kind    string
	quantum int
	pool    sync.Pool
}

// NewSharedScratch validates the estimator kind and returns an empty warm
// pool for it.
func NewSharedScratch(kind string) (*SharedScratch, error) {
	factory, err := factoryFor(kind)
	if err != nil {
		return nil, err
	}
	ss := &SharedScratch{kind: kind}
	quantum, probe := quantumOf(factory)
	ss.quantum = quantum
	ss.pool.New = func() any { return factory(1, 0) }
	ss.pool.Put(probe)
	return ss, nil
}

// Kind returns the estimator kind the pool was built for.
func (ss *SharedScratch) Kind() string { return ss.kind }

// NewParallelShared is NewParallel leasing its serial samplers from the
// shared pool; the pool's kind determines the estimator. Results are
// bit-identical to an equally configured NewParallel sampler.
func NewParallelShared(ss *SharedScratch, z int, seed int64, workers int) *ParallelSampler {
	factory, err := factoryFor(ss.kind)
	if err != nil {
		// NewSharedScratch validated the kind; an invalid one here means
		// the SharedScratch was not obtained from it.
		panic(err)
	}
	ps := NewParallelWith(ss.kind, factory, z, seed, workers)
	ps.pool = &ss.pool
	ps.quantum = ss.quantum
	return ps
}

// Name implements Sampler.
func (ps *ParallelSampler) Name() string { return ps.name }

// Workers returns the configured worker-pool size.
func (ps *ParallelSampler) Workers() int { return ps.workers }

// SampleSize implements Sampler.
func (ps *ParallelSampler) SampleSize() int { return int(ps.z.Load()) }

// SetSampleSize implements Sampler; unlike the serial samplers it is safe
// to call concurrently with estimates (in-flight calls keep the budget
// they loaded at entry).
func (ps *ParallelSampler) SetSampleSize(z int) { ps.z.Store(int64(z)) }

// Reseed implements Sampler: it resets both the base seed and the call
// counter, so the sequence of results restarts as from construction. It
// is race-free against in-flight estimates, but the replay guarantee only
// holds once those estimates have drained (seed and counter are two
// atomics, not one transaction).
func (ps *ParallelSampler) Reseed(seed int64) {
	ps.seed.Store(seed)
	ps.call.Store(0)
}

// nextCallSeed claims the next call index and derives its seed. Every
// public estimate consumes exactly one index, making a serial call
// sequence reproducible end to end.
func (ps *ParallelSampler) nextCallSeed() int64 {
	return rng.SplitSeed(ps.seed.Load(), ps.call.Add(1))
}

// fanOut runs fn(smp, i) for i in [0, n) on up to ps.workers goroutines.
// Each goroutine leases one serial sampler from the pool for its lifetime
// and binds it to the ParallelSampler's context (cleared again before the
// sampler returns to the — possibly shared — pool); fn must fully configure
// it (Reseed + SetSampleSize) before estimating, so leftover pool state
// never leaks into results. When the bound context fires, remaining work
// items are skipped: the merged result is garbage, and the caller is
// expected to discard it after observing ctx.Err().
func (ps *ParallelSampler) fanOut(n int, fn func(smp Sampler, i int)) {
	w := ps.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		smp := ps.lease()
		for i := 0; i < n; i++ {
			if ps.cancelled() {
				break
			}
			fn(smp, i)
		}
		ps.release(smp)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			smp := ps.lease()
			defer ps.release(smp)
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ps.cancelled() {
					return
				}
				fn(smp, i)
			}
		}()
	}
	wg.Wait()
}

// lease takes a serial sampler from the pool and binds the current context
// so its sample loops abort promptly on cancellation.
func (ps *ParallelSampler) lease() Sampler {
	smp := ps.pool.Get().(Sampler)
	smp.SetContext(ps.ctx)
	return smp
}

// release unbinds the context and returns the sampler to the pool.
func (ps *ParallelSampler) release(smp Sampler) {
	smp.SetContext(nil)
	ps.pool.Put(smp)
}

// minShardBudget is the smallest per-shard sample budget worth the fan-out
// overhead. Budgets below shards·minShardBudget use proportionally fewer
// shards — the solvers' inner loops estimate tiny path subgraphs with
// modest Z thousands of times, where full sharding costs more in setup
// than it wins in parallelism. The shard count depends only on z, never on
// the worker count, so determinism across pool sizes is unaffected.
const minShardBudget = 64

// shardBudgets splits z into deterministic sub-budgets, every one >= 1
// (shards never exceed z; the first z mod shards shards get one extra
// sample).
func (ps *ParallelSampler) shardBudgets(z int) []int {
	return ps.shardBudgetsFor(z, 1)
}

// shardBudgetsFor is shardBudgets for a batch of items evaluated in one
// fan-out: the per-item shard count scales down as the batch grows, so a
// one-item batch is sharded like a scalar call (the whole pool works on
// it) while a batch that alone saturates the shard target gets one shard
// per item and pays no per-shard overhead (each shard costs a full RNG
// reseed — the 607-word rand source re-init — plus a scratch reset). The
// count depends only on (z, items) and the estimator's fixed quantum,
// never on the worker count, so results stay bit-identical across pool
// sizes.
//
// Budgets are distributed in units of the estimator's quantum (64 for
// mcvec's lane blocks): every shard receives whole blocks and only the
// last shard is shrunk by the z % quantum tail, so interior shards never
// pay a partial lane mask. For quantum 1 (the scalar kinds) this reduces
// exactly to the historical even split, keeping their shard streams — and
// therefore their estimates — bit-identical to earlier releases.
func (ps *ParallelSampler) shardBudgetsFor(z, items int) []int {
	if z < 1 {
		z = 1
	}
	if items < 1 {
		items = 1
	}
	q := ps.quantum
	if q < 1 {
		q = 1
	}
	blocks := (z + q - 1) / q
	unit := minShardBudget / q
	if unit < 1 {
		unit = 1
	}
	shards := (blocks + unit - 1) / unit
	if target := (ps.shards + items - 1) / items; shards > target {
		shards = target
	}
	if shards > ps.shards {
		shards = ps.shards
	}
	out := make([]int, shards)
	base, extra := blocks/shards, blocks%shards
	for i := range out {
		nb := base
		if i < extra {
			nb++
		}
		out[i] = nb * q
	}
	// The tail never exceeds the last shard's whole-block budget: the last
	// shard holds >= 1 block and the shortfall is < one block.
	out[shards-1] -= blocks*q - z
	return out
}

// shardReliability runs one shard's conditioned estimate on the snapshot,
// falling back to a Graph-path call for non-CSR factories. g is nil when
// the public call entered through a snapshot-level CSRSampler method — no
// Graph exists to fall back to, so a non-CSR factory is a contract
// violation reported as an explicit panic rather than a nil dereference
// deep inside the sampler.
func shardReliability(smp Sampler, c *ugraph.CSR, g *ugraph.Graph, s, t ugraph.NodeID) float64 {
	if cs, ok := smp.(CSRSampler); ok {
		return cs.ReliabilityCSR(c, s, t)
	}
	if g == nil {
		panic("sampling: snapshot-level ParallelSampler calls require the factory's sampler to implement CSRSampler")
	}
	return smp.Reliability(g, s, t)
}

// Reliability implements Sampler: shard i estimates with budget z_i on the
// stream Split(callSeed, i), and the estimates combine as the
// budget-weighted mean Σ (z_i/Z)·est_i — for MC exactly the pooled
// hit fraction, for RSS/Lazy an equally weighted mixture of independent
// unbiased estimates.
func (ps *ParallelSampler) Reliability(g *ugraph.Graph, s, t ugraph.NodeID) float64 {
	if s == t {
		return 1
	}
	return ps.reliabilityCSR(g.Freeze(), g, s, t)
}

// ReliabilityCSR implements CSRSampler on an already-frozen snapshot (or a
// WithEdges overlay). Non-CSR factory samplers cannot be driven from a bare
// snapshot, so this entry point requires a CSR-capable factory; the
// built-in mc/rss/lazy kinds all are.
func (ps *ParallelSampler) ReliabilityCSR(c *ugraph.CSR, s, t ugraph.NodeID) float64 {
	if s == t {
		return 1
	}
	return ps.reliabilityCSR(c, nil, s, t)
}

func (ps *ParallelSampler) reliabilityCSR(c *ugraph.CSR, g *ugraph.Graph, s, t ugraph.NodeID) float64 {
	z := ps.SampleSize()
	callSeed := ps.nextCallSeed()
	budgets := ps.shardBudgets(z)
	est := make([]float64, len(budgets))
	ps.fanOut(len(budgets), func(smp Sampler, i int) {
		smp.Reseed(rng.SplitSeed(callSeed, int64(i)))
		smp.SetSampleSize(budgets[i])
		est[i] = shardReliability(smp, c, g, s, t)
	})
	return mergeScalar(est, budgets)
}

// ReliabilityFrom implements Sampler.
func (ps *ParallelSampler) ReliabilityFrom(g *ugraph.Graph, s ugraph.NodeID) []float64 {
	return ps.vector(g.Freeze(), g, s, true)
}

// ReliabilityTo implements Sampler.
func (ps *ParallelSampler) ReliabilityTo(g *ugraph.Graph, t ugraph.NodeID) []float64 {
	return ps.vector(g.Freeze(), g, t, false)
}

// ReliabilityFromCSR implements CSRSampler.
func (ps *ParallelSampler) ReliabilityFromCSR(c *ugraph.CSR, s ugraph.NodeID) []float64 {
	return ps.vector(c, nil, s, true)
}

// ReliabilityToCSR implements CSRSampler.
func (ps *ParallelSampler) ReliabilityToCSR(c *ugraph.CSR, t ugraph.NodeID) []float64 {
	return ps.vector(c, nil, t, false)
}

func (ps *ParallelSampler) vector(c *ugraph.CSR, g *ugraph.Graph, src ugraph.NodeID, forward bool) []float64 {
	z := ps.SampleSize()
	callSeed := ps.nextCallSeed()
	budgets := ps.shardBudgets(z)
	vecs := make([][]float64, len(budgets))
	ps.fanOut(len(budgets), func(smp Sampler, i int) {
		smp.Reseed(rng.SplitSeed(callSeed, int64(i)))
		smp.SetSampleSize(budgets[i])
		vecs[i] = shardVector(smp, c, g, src, forward)
	})
	return mergeVectors(vecs, budgets, c.N())
}

func shardVector(smp Sampler, c *ugraph.CSR, g *ugraph.Graph, src ugraph.NodeID, forward bool) []float64 {
	if cs, ok := smp.(CSRSampler); ok {
		if forward {
			return cs.ReliabilityFromCSR(c, src)
		}
		return cs.ReliabilityToCSR(c, src)
	}
	if g == nil {
		panic("sampling: snapshot-level ParallelSampler calls require the factory's sampler to implement CSRSampler")
	}
	if forward {
		return smp.ReliabilityFrom(g, src)
	}
	return smp.ReliabilityTo(g, src)
}

// mergeScalar folds per-shard estimates as Σ(b_i·e_i)/z in shard order;
// the fixed order keeps float summation bit-reproducible, and the single
// final division keeps unanimous shards exact (all-1 estimates merge to
// exactly 1, which per-shard b_i/z weights would miss when z splits
// unevenly).
func mergeScalar(est []float64, budgets []int) float64 {
	total, z := 0.0, 0
	for _, b := range budgets {
		z += b
	}
	for i, e := range est {
		total += float64(budgets[i]) * e
	}
	return total / float64(z)
}

func mergeVectors(vecs [][]float64, budgets []int, n int) []float64 {
	acc := make([]float64, n)
	z := 0
	for _, b := range budgets {
		z += b
	}
	for i, vec := range vecs {
		w := float64(budgets[i])
		for v, x := range vec {
			acc[v] += w * x
		}
	}
	inv := 1 / float64(z)
	for v := range acc {
		acc[v] *= inv
	}
	return acc
}

// EstimateMany implements BatchSampler. The fan-out covers the
// (query, shard) product — not just the queries — so a two-query batch at
// Workers=8 still keeps every worker busy: query q's shard i draws from
// the stream Split(Split(callSeed, q), i) with the same deterministic
// budget split as a scalar call. Result q is deterministic in (seed, q)
// at any worker count; the streams are keyed on the (query, shard) pair,
// so results are statistically equivalent but not bit-identical to
// one-at-a-time Reliability calls.
func (ps *ParallelSampler) EstimateMany(g *ugraph.Graph, queries []PairQuery) []float64 {
	if len(queries) == 0 {
		return nil
	}
	return ps.estimateManyCSR(g.Freeze(), g, queries)
}

// EstimateManyCSR is EstimateMany on an already-frozen snapshot (flat or
// layered): the serving tier's batch path runs directly on the pinned
// epoch's CSR without materializing a mutable Graph. Like the other
// snapshot-level entry points it requires a CSR-capable factory (the
// built-in kinds all are). Results are bit-identical to EstimateMany over a
// graph that freezes to the same logical snapshot.
func (ps *ParallelSampler) EstimateManyCSR(c *ugraph.CSR, queries []PairQuery) []float64 {
	if len(queries) == 0 {
		return nil
	}
	return ps.estimateManyCSR(c, nil, queries)
}

func (ps *ParallelSampler) estimateManyCSR(c *ugraph.CSR, g *ugraph.Graph, queries []PairQuery) []float64 {
	z := ps.SampleSize()
	callSeed := ps.nextCallSeed()
	budgets := ps.shardBudgetsFor(z, len(queries))
	shards := len(budgets)
	est := make([]float64, len(queries)*shards)
	ps.fanOut(len(est), func(smp Sampler, k int) {
		qi, si := k/shards, k%shards
		q := queries[qi]
		if q.S == q.T {
			est[k] = 1
			return
		}
		smp.Reseed(rng.SplitSeed(rng.SplitSeed(callSeed, int64(qi)), int64(si)))
		smp.SetSampleSize(budgets[si])
		est[k] = shardReliability(smp, c, g, q.S, q.T)
	})
	out := make([]float64, len(queries))
	for qi := range queries {
		out[qi] = mergeScalar(est[qi*shards:(qi+1)*shards], budgets)
	}
	return out
}

// EstimateEdges implements BatchSampler: the base graph is frozen once,
// candidate edge e is evaluated on a lightweight CSR overlay (no per-
// candidate clone or snapshot rebuild), and — like EstimateMany — the
// fan-out covers the (candidate, shard) product so small candidate sets
// still saturate the pool. This is the batched form of the hill-climbing /
// individual-top-k inner loop.
func (ps *ParallelSampler) EstimateEdges(g *ugraph.Graph, s, t ugraph.NodeID, edges []ugraph.Edge) []float64 {
	if len(edges) == 0 {
		return nil
	}
	z := ps.SampleSize()
	callSeed := ps.nextCallSeed()
	budgets := ps.shardBudgetsFor(z, len(edges))
	shards := len(budgets)
	base := g.Freeze()
	views := make([]*ugraph.CSR, len(edges))
	for i := range edges {
		views[i] = base.WithEdges(edges[i : i+1])
	}
	est := make([]float64, len(edges)*shards)
	ps.fanOut(len(est), func(smp Sampler, k int) {
		ei, si := k/shards, k%shards
		smp.Reseed(rng.SplitSeed(rng.SplitSeed(callSeed, int64(ei)), int64(si)))
		smp.SetSampleSize(budgets[si])
		if cs, ok := smp.(CSRSampler); ok {
			est[k] = cs.ReliabilityCSR(views[ei], s, t)
		} else {
			est[k] = smp.Reliability(g.WithEdges(edges[ei:ei+1]), s, t)
		}
	})
	out := make([]float64, len(edges))
	for ei := range edges {
		out[ei] = mergeScalar(est[ei*shards:(ei+1)*shards], budgets)
	}
	return out
}

// ReliabilityFromMany implements BatchSampler.
func (ps *ParallelSampler) ReliabilityFromMany(g *ugraph.Graph, sources []ugraph.NodeID) [][]float64 {
	return ps.vectorMany(g, sources, true)
}

// ReliabilityToMany implements BatchSampler.
func (ps *ParallelSampler) ReliabilityToMany(g *ugraph.Graph, targets []ugraph.NodeID) [][]float64 {
	return ps.vectorMany(g, targets, false)
}

// vectorMany fans out over the (node, shard) product rather than just the
// nodes, so a two-source batch at Workers=8 still keeps every worker busy.
// Node n's shard i draws from Split(Split(callSeed, n), i): the stream is
// keyed on the (node, shard) pair alone, preserving determinism across
// pool sizes. The streams differ from the single-node vector() path
// (which keys on shard only), so batched results are statistically
// equivalent but not bit-identical to per-node calls.
func (ps *ParallelSampler) vectorMany(g *ugraph.Graph, nodes []ugraph.NodeID, forward bool) [][]float64 {
	z := ps.SampleSize()
	callSeed := ps.nextCallSeed()
	budgets := ps.shardBudgetsFor(z, len(nodes))
	shards := len(budgets)
	c := g.Freeze()
	vecs := make([][]float64, len(nodes)*shards)
	ps.fanOut(len(vecs), func(smp Sampler, k int) {
		n, i := k/shards, k%shards
		smp.Reseed(rng.SplitSeed(rng.SplitSeed(callSeed, int64(n)), int64(i)))
		smp.SetSampleSize(budgets[i])
		vecs[k] = shardVector(smp, c, g, nodes[n], forward)
	})
	out := make([][]float64, len(nodes))
	for n := range nodes {
		out[n] = mergeVectors(vecs[n*shards:(n+1)*shards], budgets, c.N())
	}
	return out
}

// FromMany returns one ReliabilityFrom vector per node: batched when smp
// is a BatchSampler, otherwise a serial loop in node order (preserving
// the exact RNG call sequence a plain sampler would produce). The shared
// fallback for candidate elimination and pair-reliability matrices.
func FromMany(smp Sampler, g *ugraph.Graph, nodes []ugraph.NodeID) [][]float64 {
	if bs, ok := smp.(BatchSampler); ok {
		return bs.ReliabilityFromMany(g, nodes)
	}
	out := make([][]float64, len(nodes))
	for i, v := range nodes {
		out[i] = smp.ReliabilityFrom(g, v)
	}
	return out
}

// ToMany is FromMany's reverse-direction counterpart.
func ToMany(smp Sampler, g *ugraph.Graph, nodes []ugraph.NodeID) [][]float64 {
	if bs, ok := smp.(BatchSampler); ok {
		return bs.ReliabilityToMany(g, nodes)
	}
	out := make([][]float64, len(nodes))
	for i, v := range nodes {
		out[i] = smp.ReliabilityTo(g, v)
	}
	return out
}
