package sampling

import (
	"math"
	"sync"
	"testing"

	"repro/internal/rng"
	"repro/internal/ugraph"
)

var parallelKinds = []string{"mc", "rss", "lazy"}

func newParallelT(t *testing.T, kind string, z int, seed int64, workers int) *ParallelSampler {
	t.Helper()
	ps, err := NewParallel(kind, z, seed, workers)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// TestParallelDeterministicAcrossWorkers is the core contract: for a fixed
// seed, every estimate — scalar, vector and batched — is bit-identical at
// any worker count, over a sequence of calls.
func TestParallelDeterministicAcrossWorkers(t *testing.T) {
	r := rng.New(77)
	g := randomSmallGraph(r, false)
	s, tt := ugraph.NodeID(0), ugraph.NodeID(g.N()-1)
	queries := []PairQuery{{S: s, T: tt}, {S: tt, T: s}, {S: s, T: s}}
	cands := []ugraph.Edge{{U: 0, V: ugraph.NodeID(g.N() - 1), P: 0.5}, {U: 1, V: 2, P: 0.7}}
	for _, kind := range parallelKinds {
		base := newParallelT(t, kind, 333, 42, 1)
		for _, workers := range []int{2, 4, 8} {
			base.Reseed(42) // replay the same call sequence per worker count
			ps := newParallelT(t, kind, 333, 42, workers)
			// Interleave call types so the call counter is exercised.
			for round := 0; round < 3; round++ {
				if a, b := base.Reliability(g, s, tt), ps.Reliability(g, s, tt); a != b {
					t.Fatalf("%s round %d: Reliability w1=%v w%d=%v", kind, round, a, workers, b)
				}
				if a, b := base.ReliabilityFrom(g, s), ps.ReliabilityFrom(g, s); !equalVec(a, b) {
					t.Fatalf("%s round %d: ReliabilityFrom differs at %d workers", kind, round, workers)
				}
				if a, b := base.ReliabilityTo(g, tt), ps.ReliabilityTo(g, tt); !equalVec(a, b) {
					t.Fatalf("%s round %d: ReliabilityTo differs at %d workers", kind, round, workers)
				}
				if a, b := base.EstimateMany(g, queries), ps.EstimateMany(g, queries); !equalVec(a, b) {
					t.Fatalf("%s round %d: EstimateMany differs at %d workers", kind, round, workers)
				}
				if a, b := base.EstimateEdges(g, s, tt, cands), ps.EstimateEdges(g, s, tt, cands); !equalVec(a, b) {
					t.Fatalf("%s round %d: EstimateEdges differs at %d workers", kind, round, workers)
				}
				if a, b := base.ReliabilityFromMany(g, []ugraph.NodeID{s, 1}), ps.ReliabilityFromMany(g, []ugraph.NodeID{s, 1}); !equalMat(a, b) {
					t.Fatalf("%s round %d: ReliabilityFromMany differs at %d workers", kind, round, workers)
				}
			}
		}
	}
}

func equalMat(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !equalVec(a[i], b[i]) {
			return false
		}
	}
	return true
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelMatchesExact checks the merged estimator stays unbiased: the
// budget-weighted shard mixture must converge to the exact reliability.
func TestParallelMatchesExact(t *testing.T) {
	r := rng.New(303)
	for _, kind := range parallelKinds {
		ps := newParallelT(t, kind, 40000, 9, 4)
		for trial := 0; trial < 4; trial++ {
			g := randomSmallGraph(r, trial%2 == 0)
			s, tt := ugraph.NodeID(0), ugraph.NodeID(g.N()-1)
			exact, err := g.ExactReliability(s, tt)
			if err != nil {
				t.Fatal(err)
			}
			got := ps.Reliability(g, s, tt)
			if math.Abs(got-exact) > 0.02 {
				t.Errorf("%s trial %d: parallel=%v exact=%v", kind, trial, got, exact)
			}
		}
	}
}

// TestParallelVectorMatchesScalar cross-checks the batched vector APIs
// against their scalar counterparts' semantics (entry for the query node
// is 1, entries lie in [0, 1]). The budget deliberately splits unevenly
// across shards: unanimous shard estimates must still merge to exactly 1.
func TestParallelVectorMatchesScalar(t *testing.T) {
	r := rng.New(404)
	g := randomSmallGraph(r, true)
	ps := newParallelT(t, "mc", 1663, 5, 4)
	sources := []ugraph.NodeID{0, 1}
	fromMany := ps.ReliabilityFromMany(g, sources)
	if len(fromMany) != len(sources) {
		t.Fatalf("ReliabilityFromMany returned %d rows, want %d", len(fromMany), len(sources))
	}
	toMany := ps.ReliabilityToMany(g, sources)
	for i, s := range sources {
		if fromMany[i][s] != 1 {
			t.Errorf("fromMany[%d][%d] = %v, want 1", i, s, fromMany[i][s])
		}
		if toMany[i][s] != 1 {
			t.Errorf("toMany[%d][%d] = %v, want 1", i, s, toMany[i][s])
		}
		for v, x := range fromMany[i] {
			if x < 0 || x > 1 {
				t.Fatalf("fromMany[%d][%d] = %v out of range", i, v, x)
			}
		}
	}
}

// TestParallelReseedRestartsSequence verifies Reseed resets the call
// counter: the same sequence of calls replays identically.
func TestParallelReseedRestartsSequence(t *testing.T) {
	r := rng.New(505)
	g := randomSmallGraph(r, false)
	s, tt := ugraph.NodeID(0), ugraph.NodeID(g.N()-1)
	ps := newParallelT(t, "rss", 500, 11, 3)
	first := []float64{ps.Reliability(g, s, tt), ps.Reliability(g, s, tt)}
	ps.Reseed(11)
	second := []float64{ps.Reliability(g, s, tt), ps.Reliability(g, s, tt)}
	if !equalVec(first, second) {
		t.Fatalf("replay after Reseed differs: %v vs %v", first, second)
	}
	if first[0] == first[1] {
		t.Fatalf("successive calls returned identical estimates %v; call counter not advancing", first[0])
	}
}

// TestParallelTinyBudget exercises budgets at or below the maximum shard
// count, where the budget-proportional shard sizing collapses to one or a
// few shards.
func TestParallelTinyBudget(t *testing.T) {
	r := rng.New(606)
	g := randomSmallGraph(r, false)
	s, tt := ugraph.NodeID(0), ugraph.NodeID(g.N()-1)
	for _, kind := range parallelKinds {
		for _, z := range []int{1, 3, DefaultShards - 1} {
			a := newParallelT(t, kind, z, 21, 1)
			b := newParallelT(t, kind, z, 21, 8)
			va, vb := a.Reliability(g, s, tt), b.Reliability(g, s, tt)
			if va != vb {
				t.Fatalf("%s z=%d: w1=%v w8=%v", kind, z, va, vb)
			}
			if va < 0 || va > 1 {
				t.Fatalf("%s z=%d: estimate %v out of range", kind, z, va)
			}
		}
	}
}

// TestParallelStress hammers one ParallelSampler from many goroutines; run
// under -race this is the concurrency-safety check of the new contract.
func TestParallelStress(t *testing.T) {
	r := rng.New(707)
	g := randomSmallGraph(r, false)
	s, tt := ugraph.NodeID(0), ugraph.NodeID(g.N()-1)
	ps := newParallelT(t, "mc", 200, 31, 4)
	queries := []PairQuery{{S: s, T: tt}, {S: tt, T: s}}
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch (k + i) % 4 {
				case 0:
					if v := ps.Reliability(g, s, tt); v < 0 || v > 1 {
						t.Errorf("Reliability out of range: %v", v)
					}
				case 1:
					ps.ReliabilityFrom(g, s)
				case 2:
					ps.EstimateMany(g, queries)
				case 3:
					ps.EstimateEdges(g, s, tt, []ugraph.Edge{{U: 1, V: 3, P: 0.4}})
				}
				if i == 10 {
					ps.Reseed(int64(k)) // must be race-free against in-flight estimates
				}
			}
		}(k)
	}
	wg.Wait()
}

// TestParallelImplementsBatch pins the interface relationships.
func TestParallelImplementsBatch(t *testing.T) {
	var smp Sampler = newParallelT(t, "mc", 100, 1, 2)
	if _, ok := smp.(BatchSampler); !ok {
		t.Fatal("ParallelSampler must implement BatchSampler")
	}
	if smp.Name() != "mc" {
		t.Fatalf("Name() = %q, want underlying estimator name", smp.Name())
	}
}
