package sampling

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/ugraph"
)

func TestLazyMatchesExact(t *testing.T) {
	r := rng.New(303)
	lz := NewLazy(40000, 3)
	for trial := 0; trial < 8; trial++ {
		g := randomSmallGraph(r, trial%2 == 0)
		s, tt := ugraph.NodeID(0), ugraph.NodeID(g.N()-1)
		exact, err := g.ExactReliability(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		got := lz.Reliability(g, s, tt)
		if math.Abs(got-exact) > 0.015 {
			t.Errorf("trial %d: lazy=%v exact=%v", trial, got, exact)
		}
	}
}

func TestLazyEdgeFrequencyMatchesP(t *testing.T) {
	// Single edge with p=0.37: over Z samples the edge must be present
	// ≈ 37% of the time — this checks the geometric schedule's marginal
	// distribution.
	g := ugraph.New(2, true)
	g.MustAddEdge(0, 1, 0.37)
	lz := NewLazy(100000, 5)
	got := lz.Reliability(g, 0, 1)
	if math.Abs(got-0.37) > 0.006 {
		t.Fatalf("edge frequency %v, want 0.37", got)
	}
}

func TestLazyDegenerateProbabilities(t *testing.T) {
	g := ugraph.New(3, true)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 0)
	lz := NewLazy(500, 7)
	if got := lz.Reliability(g, 0, 1); got != 1 {
		t.Fatalf("p=1 edge estimate %v, want 1", got)
	}
	if got := lz.Reliability(g, 0, 2); got != 0 {
		t.Fatalf("p=0 edge estimate %v, want 0", got)
	}
}

func TestLazyVectors(t *testing.T) {
	g := ugraph.New(3, true)
	g.MustAddEdge(0, 1, 0.8)
	g.MustAddEdge(1, 2, 0.5)
	lz := NewLazy(60000, 9)
	from := lz.ReliabilityFrom(g, 0)
	want := []float64{1, 0.8, 0.4}
	for i := range want {
		if math.Abs(from[i]-want[i]) > 0.015 {
			t.Errorf("from[%d] = %v, want %v", i, from[i], want[i])
		}
	}
	to := lz.ReliabilityTo(g, 2)
	wantTo := []float64{0.4, 0.5, 1}
	for i := range wantTo {
		if math.Abs(to[i]-wantTo[i]) > 0.015 {
			t.Errorf("to[%d] = %v, want %v", i, to[i], wantTo[i])
		}
	}
}

func TestLazyUnbiasedAcrossQueries(t *testing.T) {
	// Re-using one sampler across queries must not bias later estimates
	// (the schedule is reset per query).
	g := ugraph.New(2, true)
	g.MustAddEdge(0, 1, 0.5)
	lz := NewLazy(20000, 11)
	var ests []float64
	for i := 0; i < 5; i++ {
		ests = append(ests, lz.Reliability(g, 0, 1))
	}
	if m := stats.Mean(ests); math.Abs(m-0.5) > 0.01 {
		t.Fatalf("mean over reuse %v, want 0.5", m)
	}
}

func TestLazySelfTarget(t *testing.T) {
	g := ugraph.New(2, true)
	if got := NewLazy(10, 1).Reliability(g, 1, 1); got != 1 {
		t.Fatalf("R(v,v) = %v", got)
	}
}
