package sampling

// Microbenchmarks isolating the CSR refactor: the flat-snapshot engine
// against the legacy slice-of-slices engine (reference_test.go) on the
// same graphs and seeds, the snapshot build cost, and the overlay-vs-clone
// candidate evaluation shape. Run with `make bench-compare` to get a
// benchstat old-vs-new table.

import (
	"context"

	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ugraph"
)

// benchGraph is a mid-size graph with hub structure, the shape the BFS
// cache behaviour actually matters on.
func benchGraph(n int, directed bool) *ugraph.Graph {
	r := rand.New(rand.NewSource(17))
	g := ugraph.New(n, directed)
	for i := 0; i < 8*n; i++ {
		u := ugraph.NodeID(r.Intn(n))
		v := ugraph.NodeID(r.Intn(n))
		if r.Intn(3) == 0 {
			u = ugraph.NodeID(r.Intn(n / 16)) // hub bias
		}
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 0.05+0.5*r.Float64())
	}
	return g
}

// BenchmarkCSRvsLegacy pits the CSR engine against the preserved legacy
// engine on identical work: the per-op delta is the flattening win alone,
// since both consume the same RNG stream and visit the same arcs.
func BenchmarkCSRvsLegacy(b *testing.B) {
	const z = 200
	for _, n := range []int{256, 2048} {
		g := benchGraph(n, false)
		s, t := ugraph.NodeID(0), ugraph.NodeID(n-1)
		b.Run(fmt.Sprintf("mc/csr/n%d", n), func(b *testing.B) {
			smp := NewMonteCarlo(z, 1)
			smp.Reliability(g, s, t)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkFloat = smp.Reliability(g, s, t)
			}
		})
		b.Run(fmt.Sprintf("mc/legacy/n%d", n), func(b *testing.B) {
			smp := newRefMonteCarlo(z, 1)
			smp.Reliability(g, s, t)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkFloat = smp.Reliability(g, s, t)
			}
		})
		b.Run(fmt.Sprintf("mcvec/csr/n%d", n), func(b *testing.B) {
			// Same budget as mc/csr: the per-op ratio between the two is
			// the word-parallel speedup benchgate reports.
			smp := NewMCVec(z, 1)
			smp.Reliability(g, s, t)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkFloat = smp.Reliability(g, s, t)
			}
		})
		b.Run(fmt.Sprintf("rss/csr/n%d", n), func(b *testing.B) {
			smp := NewRSS(z, 1)
			smp.Reliability(g, s, t)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkFloat = smp.Reliability(g, s, t)
			}
		})
		b.Run(fmt.Sprintf("rss/legacy/n%d", n), func(b *testing.B) {
			smp := newRefRSS(z, 1)
			smp.Reliability(g, s, t)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkFloat = smp.Reliability(g, s, t)
			}
		})
	}
}

// BenchmarkVectorMC is the scalar-vs-vector differential the bench gate
// tracks: identical budgets, lane-aligned (z = 8 blocks) so neither side
// pays a partial block. The from/* pairs run the full-closure estimators,
// where word parallelism is undiluted (~10x); the st/* pairs keep the
// early-exit s-t query, where the scalar walker stops per world but the
// vector must run until every straggler lane resolves.
func BenchmarkVectorMC(b *testing.B) {
	const z = 8 * laneBlock
	for _, n := range []int{256, 2048} {
		g := benchGraph(n, false)
		c := g.Freeze()
		s, t := ugraph.NodeID(0), ugraph.NodeID(n-1)
		for _, kind := range []string{"mc", "mcvec"} {
			newSmp := func() CSRSampler {
				if kind == "mc" {
					return NewMonteCarlo(z, 1)
				}
				return NewMCVec(z, 1)
			}
			b.Run(fmt.Sprintf("st/%s/n%d", kind, n), func(b *testing.B) {
				smp := newSmp()
				smp.ReliabilityCSR(c, s, t)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sinkFloat = smp.ReliabilityCSR(c, s, t)
				}
			})
			b.Run(fmt.Sprintf("from/%s/n%d", kind, n), func(b *testing.B) {
				smp := newSmp()
				smp.ReliabilityFromCSR(c, s)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					smp.ReliabilityFromCSR(c, s)
				}
			})
		}
	}
}

// BenchmarkFreeze measures the one-time snapshot build (paid per graph
// version, amortized across every estimate on it).
func BenchmarkFreeze(b *testing.B) {
	for _, n := range []int{256, 2048} {
		g := benchGraph(n, true)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// SetProb invalidates the cache so each iteration pays the
				// full rebuild.
				if err := g.SetProb(0, 0.5); err != nil {
					b.Fatal(err)
				}
				if g.Freeze().N() != n {
					b.Fatal("bad snapshot")
				}
			}
		})
	}
}

// BenchmarkCandidateEval compares the two ways to evaluate one candidate
// edge against a base graph: the legacy clone (copy the whole graph,
// estimate) versus the CSR overlay (share the base arrays, estimate). This
// is the inner-loop shape of hill climbing, top-k and exact search.
func BenchmarkCandidateEval(b *testing.B) {
	const z = 100
	g := benchGraph(2048, false)
	s, t := ugraph.NodeID(0), ugraph.NodeID(2047)
	cand := []ugraph.Edge{{U: s, V: t, P: 0.3}}
	b.Run("clone", func(b *testing.B) {
		smp := newRefMonteCarlo(z, 1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkFloat = smp.Reliability(g.WithEdges(cand), s, t)
		}
	})
	b.Run("overlay", func(b *testing.B) {
		smp := NewMonteCarlo(z, 1)
		base := g.Freeze()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkFloat = smp.ReliabilityCSR(base.WithEdges(cand), s, t)
		}
	})
}

// BenchmarkSolveCancellation measures the cost of the cooperative
// cancellation machinery on the mc/rss hot loops: "unbound" is the
// PR 2-shaped baseline (no context), "bound" runs the identical estimate
// with a live cancellable context attached, paying one poll per sample
// block. Acceptance: bound within 1% of unbound.
func BenchmarkSolveCancellation(b *testing.B) {
	const z = 4000
	g := benchGraph(2048, false)
	s, t := ugraph.NodeID(0), ugraph.NodeID(2047)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, kind := range []string{"mc", "rss"} {
		b.Run(kind+"/unbound", func(b *testing.B) {
			smp, err := NewSerial(kind, z, 1)
			if err != nil {
				b.Fatal(err)
			}
			smp.Reliability(g, s, t)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkFloat = smp.Reliability(g, s, t)
			}
		})
		b.Run(kind+"/bound", func(b *testing.B) {
			smp, err := NewSerial(kind, z, 1)
			if err != nil {
				b.Fatal(err)
			}
			smp.SetContext(ctx)
			smp.Reliability(g, s, t)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkFloat = smp.Reliability(g, s, t)
			}
		})
	}
}
