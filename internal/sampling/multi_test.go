package sampling

import (
	"math"
	"testing"

	"repro/internal/ugraph"
)

func TestMultiSourceReachMatchesUnion(t *testing.T) {
	// Sources 0 and 1 both point at 2 with independent edges: reach(2) =
	// 1-(1-0.5)(1-0.4) = 0.7.
	g := ugraph.New(3, true)
	g.MustAddEdge(0, 2, 0.5)
	g.MustAddEdge(1, 2, 0.4)
	mc := NewMonteCarlo(60000, 21)
	reach := mc.MultiSourceReach(g, []ugraph.NodeID{0, 1})
	if reach[0] != 1 || reach[1] != 1 {
		t.Fatalf("sources not certain: %v", reach)
	}
	if math.Abs(reach[2]-0.7) > 0.01 {
		t.Fatalf("reach(2) = %v, want 0.7", reach[2])
	}
}

func TestMultiSourceReachSingleEqualsFrom(t *testing.T) {
	g := ugraph.New(4, true)
	g.MustAddEdge(0, 1, 0.6)
	g.MustAddEdge(1, 2, 0.5)
	g.MustAddEdge(2, 3, 0.4)
	mc := NewMonteCarlo(40000, 22)
	multi := mc.MultiSourceReach(g, []ugraph.NodeID{0})
	single := mc.ReliabilityFrom(g, 0)
	for v := range multi {
		if math.Abs(multi[v]-single[v]) > 0.02 {
			t.Fatalf("node %d: multi %v vs single %v", v, multi[v], single[v])
		}
	}
}

func TestExpectedPairHopsCertainChain(t *testing.T) {
	// Certain chain 0→1→2: d(0,2) = 2 always.
	g := ugraph.New(3, true)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	mc := NewMonteCarlo(200, 23)
	got := mc.ExpectedPairHops(g, []ugraph.NodeID{0}, []ugraph.NodeID{2}, 100)
	if got != 2 {
		t.Fatalf("expected hops = %v, want exactly 2", got)
	}
}

func TestExpectedPairHopsPenalty(t *testing.T) {
	// Single edge with p = 0.5: E[d] = 0.5·1 + 0.5·penalty.
	g := ugraph.New(2, true)
	g.MustAddEdge(0, 1, 0.5)
	mc := NewMonteCarlo(40000, 24)
	got := mc.ExpectedPairHops(g, []ugraph.NodeID{0}, []ugraph.NodeID{1}, 10)
	want := 0.5*1 + 0.5*10
	if math.Abs(got-want) > 0.15 {
		t.Fatalf("expected hops = %v, want %v", got, want)
	}
}

func TestExpectedPairHopsMultiplePairs(t *testing.T) {
	// Two sources, two targets, all edges certain, star around 2.
	g := ugraph.New(5, false)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(2, 4, 1)
	mc := NewMonteCarlo(50, 25)
	got := mc.ExpectedPairHops(g, []ugraph.NodeID{0, 1}, []ugraph.NodeID{3, 4}, 99)
	if got != 8 { // each of the 4 pairs at distance 2
		t.Fatalf("sum = %v, want 8", got)
	}
}
