package sampling

import "context"

// ctxCheckBlock is the number of samples drawn between context checks in
// the estimation loops. Cancellation is cooperative and block-granular:
// the samplers never poll ctx.Err() inside the per-edge BFS hot loop, only
// between sample blocks, so an uncancelled estimate pays one predictable
// branch per sample and consumes exactly the same randomness as an unbound
// sampler (bit-identical results — pinned by the differential suites).
// A cancelled estimate returns within one block of walks.
const ctxCheckBlock = 64

// canceller is the shared SetContext state embedded by every built-in
// sampler. The zero value is unbound: no context, no overhead beyond a nil
// check per sample block. The Done channel is cached at binding time so
// the per-block poll is a non-blocking channel receive — no ctx.Err()
// mutex on the hot path.
type canceller struct {
	ctx  context.Context
	done <-chan struct{}
}

// normalizeContext drops contexts that can never be cancelled (Background,
// TODO, pure value contexts): binding them would add polls to the sampling
// loops for a signal that cannot fire.
func normalizeContext(ctx context.Context) context.Context {
	if ctx == nil || (ctx.Done() == nil && ctx.Err() == nil) {
		return nil
	}
	return ctx
}

// SetContext implements the Sampler interface's context binding.
func (cc *canceller) SetContext(ctx context.Context) {
	cc.ctx = normalizeContext(ctx)
	if cc.ctx != nil {
		cc.done = cc.ctx.Done()
	} else {
		cc.done = nil
	}
}

// cancelled reports whether the bound context has fired. Called once per
// sample block; the nil fast path keeps unbound samplers at a single
// pointer compare, and bound samplers pay one non-blocking receive.
func (cc *canceller) cancelled() bool {
	if cc.done == nil {
		return false
	}
	select {
	case <-cc.done:
		return true
	default:
		return false
	}
}
