package sampling

import (
	"math"
	"math/bits"

	"repro/internal/rng"
	"repro/internal/ugraph"
)

// laneBlock is the number of possible worlds one vector pass propagates
// together: the lanes of a uint64. Sample budgets shard and merge in units
// of laneBlock (ParallelSampler hands mcvec shards 64-aligned budgets so
// only the final block of the final shard pays a partial lane mask).
const laneBlock = 64

// MCVec is the word-parallel Monte Carlo sampler: it packs laneBlock
// possible worlds into the bit lanes of uint64 words and estimates
// reliability with a bitset BFS over the frozen CSR. Where MonteCarlo flips
// one coin and advances one frontier per world, MCVec draws one Bernoulli
// bitmask per examined edge (rng.BernoulliMask — 64 worlds in ~8 RNG words)
// and propagates all 64 frontiers with OR/AND word operations, pop-counting
// the successful lanes per block. A budget that is not a multiple of 64
// runs its final block under a partial lane mask, so the estimate divides
// by exactly z worlds.
//
// Estimates are statistically equivalent to MonteCarlo at the same budget —
// both draw z independent possible worlds — but NOT bit-identical: the
// vector path consumes randomness per (edge, block) instead of per
// (edge, world). Its own determinism contract is pinned instead: a fixed
// seed yields bit-identical estimates run to run, and the ParallelSampler
// wrapping keeps them bit-identical at any worker count. The scalar
// MonteCarlo stays the bit-exactness oracle for the legacy stream.
//
// Like the scalar samplers, MCVec reuses epoch-stamped scratch (per-node
// lane words, per-edge sampled masks, BFS queue) and allocates nothing in
// the steady-state loop; it is deterministic given its seed and NOT safe
// for concurrent use.
type MCVec struct {
	z  int
	r  rng.Mask64
	sc vecScratch
	canceller
}

// NewMCVec returns a word-parallel MC sampler drawing z possible worlds per
// query (in ceil(z/64) lane blocks), seeded deterministically.
func NewMCVec(z int, seed int64) *MCVec {
	return &MCVec{z: z, r: rng.NewMask64(seed)}
}

// Name implements Sampler.
func (v *MCVec) Name() string { return "mcvec" }

// SampleSize implements Sampler.
func (v *MCVec) SampleSize() int { return v.z }

// SetSampleSize implements Sampler.
func (v *MCVec) SetSampleSize(z int) { v.z = z }

// Reseed implements Sampler.
func (v *MCVec) Reseed(seed int64) { v.r.Seed(seed) }

// budgetQuantum reports the sample-count granularity the estimator prefers:
// ParallelSampler aligns shard budgets to it so interior shards run whole
// lane blocks and only the final shard carries the z%64 tail.
func (v *MCVec) budgetQuantum() int { return laneBlock }

// Reliability implements Sampler.
func (v *MCVec) Reliability(g *ugraph.Graph, s, t ugraph.NodeID) float64 {
	return v.ReliabilityCSR(g.Freeze(), s, t)
}

// ReliabilityCSR implements CSRSampler: ceil(z/64) bitset-BFS blocks, each
// deciding 64 worlds, with the final block lane-masked to the z%64 tail.
// Cancellation is polled once per block (= 64 samples, the same
// ctxCheckBlock granularity as the scalar loops); an interrupted estimate
// reports the fraction over the worlds actually decided.
func (v *MCVec) ReliabilityCSR(c *ugraph.CSR, s, t ugraph.NodeID) float64 {
	if s == t {
		return 1
	}
	v.sc.reset(c.N(), c.EdgeIDBound())
	hits, drawn := 0, 0
	for remaining := v.z; remaining > 0; remaining -= laneBlock {
		if v.cancelled() {
			if drawn == 0 {
				return 0
			}
			return float64(hits) / float64(drawn)
		}
		lanes := fullLanes
		if remaining < laneBlock {
			lanes = fullLanes >> (laneBlock - remaining)
		}
		hits += bits.OnesCount64(v.block(c, s, t, true, lanes, nil))
		drawn += bits.OnesCount64(lanes)
	}
	return float64(hits) / float64(v.z)
}

// ReliabilityFrom implements Sampler.
func (v *MCVec) ReliabilityFrom(g *ugraph.Graph, s ugraph.NodeID) []float64 {
	return v.vector(g.Freeze(), s, true)
}

// ReliabilityTo implements Sampler. For directed graphs it walks in-arcs
// backwards from t, like the scalar samplers.
func (v *MCVec) ReliabilityTo(g *ugraph.Graph, t ugraph.NodeID) []float64 {
	return v.vector(g.Freeze(), t, false)
}

// ReliabilityFromCSR implements CSRSampler.
func (v *MCVec) ReliabilityFromCSR(c *ugraph.CSR, s ugraph.NodeID) []float64 {
	return v.vector(c, s, true)
}

// ReliabilityToCSR implements CSRSampler.
func (v *MCVec) ReliabilityToCSR(c *ugraph.CSR, t ugraph.NodeID) []float64 {
	return v.vector(c, t, false)
}

func (v *MCVec) vector(c *ugraph.CSR, src ugraph.NodeID, forward bool) []float64 {
	v.sc.reset(c.N(), c.EdgeIDBound())
	counts := make([]float64, c.N())
	drawn := 0
	for remaining := v.z; remaining > 0; remaining -= laneBlock {
		if v.cancelled() {
			break
		}
		lanes := fullLanes
		if remaining < laneBlock {
			lanes = fullLanes >> (laneBlock - remaining)
		}
		v.block(c, src, -1, forward, lanes, counts)
		drawn += bits.OnesCount64(lanes)
	}
	if drawn == 0 {
		return counts
	}
	inv := 1 / float64(drawn)
	for i := range counts {
		counts[i] *= inv
	}
	return counts
}

const fullLanes = ^uint64(0)

// laneNode is one node's lane state: the lanes in which it has been
// reached, the reached-but-not-expanded lanes (the node is queued iff
// pend != 0), the epoch stamp validating both, and the epoch of the node's
// last arc scan (scanEp == epoch means every incident arc already has a
// sampled mask, so a re-expansion skips the per-arc epoch checks). Packed
// as one struct so touching a node in the BFS is a single cache-line
// access rather than four scattered array loads.
type laneNode struct {
	ep, scanEp int32
	vis, pend  uint64
}

// laneEdge is one edge's sampled existence lanes, memoized per block under
// an epoch stamp; same packing rationale as laneNode.
type laneEdge struct {
	ep   int32
	mask uint64
}

// vecScratch is the vector counterpart of scratch: per-node lane state,
// per-edge sampled existence masks, and the BFS queue, all epoch-stamped so
// nothing is cleared between blocks. The edge masks double as the
// sampled-world record the scalar-replay fuzz target audits.
type vecScratch struct {
	epoch int32
	nodes []laneNode
	edges []laneEdge
	queue []ugraph.NodeID
}

func (sc *vecScratch) reset(n, m int) {
	// Mirror scratch.reset: when the epoch counter restarts, every stamp
	// array must be zeroed, not just the one that grew, or stale stamps
	// from earlier epochs would validate garbage words.
	if len(sc.nodes) < n || len(sc.edges) < m {
		if len(sc.nodes) < n {
			sc.nodes = make([]laneNode, n)
		} else {
			clear(sc.nodes)
		}
		if len(sc.edges) < m {
			sc.edges = make([]laneEdge, m)
		} else {
			clear(sc.edges)
		}
		sc.epoch = 0
	}
	if cap(sc.queue) < 2*n {
		// Re-expansion waves re-enqueue nodes, so the queue routinely
		// outgrows n; 2n slack keeps steady-state appends growth-free.
		sc.queue = make([]ugraph.NodeID, 0, 2*n)
	}
}

// nextEpoch advances the block epoch, clearing the stamp arrays explicitly
// on wraparound (after ~2^31 blocks).
func (sc *vecScratch) nextEpoch() {
	sc.epoch++
	if sc.epoch <= 0 {
		clear(sc.nodes)
		clear(sc.edges)
		sc.epoch = 1
	}
}

// block runs one 64-world bitset BFS from src and returns the lanes in
// which t was reached (0 when t < 0). Edge existence masks are sampled
// lazily on first examination and memoized per block, so an undirected edge
// examined from both endpoints — or a node re-expanded when new lanes
// arrive — sees one consistent set of worlds, exactly like the scalar
// walk's signed-epoch memoization. When counts != nil every node's counter
// grows by the number of lanes that reached it (the pop-count merge of the
// ReliabilityFrom/To estimators). A node is enqueued exactly when its
// pending lane set transitions from empty to non-empty, so each node is
// expanded once per wave of newly arrived lanes; t itself is never
// expanded, matching the scalar early exit, and the BFS stops outright
// once every active lane has reached t.
//
// The expansion loop is split on whether the node has been scanned this
// block: a first scan interleaves mask sampling (the digit comparison of
// rng.BernoulliMask, inlined so the generator state stays in registers),
// while a re-expansion — whose arcs are all memoized by construction —
// runs a pure-load loop with no per-arc epoch checks.
func (v *MCVec) block(c *ugraph.CSR, src, t ugraph.NodeID, forward bool, lanes uint64, counts []float64) uint64 {
	sc := &v.sc
	sc.nextEpoch()
	epoch := sc.epoch
	nodes, edges := sc.nodes, sc.edges
	queue := sc.queue[:0]
	queue = append(queue, src)
	nodes[src] = laneNode{ep: epoch, vis: lanes, pend: lanes}
	if counts != nil {
		counts[src] += float64(bits.OnesCount64(lanes))
	}
	var tmask uint64
	hasX := c.HasOverlay()
	r := &v.r
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		nu := &nodes[u]
		f := nu.pend
		nu.pend = 0
		rescan := nu.scanEp == epoch
		nu.scanEp = epoch
		var arcs, extra []ugraph.Arc
		var probs, xprobs []float64
		if forward {
			arcs = c.Out(u)
			if hasX {
				extra = c.OutOverlay(u)
			}
			if !rescan {
				probs = c.OutProbs(u)
				if hasX {
					xprobs = c.OutOverlayProbs(u)
				}
			}
		} else {
			arcs = c.In(u)
			if hasX {
				extra = c.InOverlay(u)
			}
			if !rescan {
				probs = c.InProbs(u)
				if hasX {
					xprobs = c.InOverlayProbs(u)
				}
			}
		}
		for {
			if rescan {
				for _, a := range arcs {
					m := f & edges[a.EID].mask
					if m == 0 {
						continue
					}
					w := a.To
					nw := &nodes[w]
					if nw.ep == epoch {
						m &^= nw.vis
						if m == 0 {
							continue
						}
						nw.vis |= m
					} else {
						*nw = laneNode{ep: epoch, vis: m}
					}
					if counts != nil {
						counts[w] += float64(bits.OnesCount64(m))
					}
					if w == t {
						tmask |= m
						if tmask == lanes {
							sc.queue = queue
							return tmask
						}
						continue
					}
					if nw.pend == 0 {
						queue = append(queue, w)
					}
					nw.pend |= m
				}
			} else {
				for i, a := range arcs {
					e := &edges[a.EID]
					em := e.mask
					if e.ep != epoch {
						// Inline rng.BernoulliMask fast path: p's binary
						// expansion packed MSB-first into one digit
						// register (fits whenever p >= 2^-11); identical
						// digit steps and word consumption to the library
						// function, which remains the cold path.
						p := probs[i]
						em = 0
						if p >= 1 {
							em = fullLanes
						} else if p > 0 {
							if pb := math.Float64bits(p); pb>>52 >= 1011 {
								dig := (pb&(1<<52-1) | 1<<52) << (pb>>52 - 1011)
								und := fullLanes
								for und != 0 && dig != 0 {
									w := r.Uint64()
									d := -(dig >> 63)
									em |= und & d &^ w
									und &= w ^ ^d
									dig <<= 1
								}
							} else {
								em = rng.BernoulliMask(r, p)
							}
						}
						e.mask = em
						e.ep = epoch
					}
					m := f & em
					if m == 0 {
						continue
					}
					w := a.To
					nw := &nodes[w]
					if nw.ep == epoch {
						m &^= nw.vis
						if m == 0 {
							continue
						}
						nw.vis |= m
					} else {
						*nw = laneNode{ep: epoch, vis: m}
					}
					if counts != nil {
						counts[w] += float64(bits.OnesCount64(m))
					}
					if w == t {
						tmask |= m
						if tmask == lanes {
							sc.queue = queue
							return tmask
						}
						continue
					}
					if nw.pend == 0 {
						queue = append(queue, w)
					}
					nw.pend |= m
				}
			}
			if len(extra) == 0 {
				break
			}
			arcs, probs, extra = extra, xprobs, nil
		}
	}
	sc.queue = queue
	return tmask
}
