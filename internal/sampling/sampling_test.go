package sampling

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/ugraph"
)

// randomSmallGraph builds a connected-ish random uncertain graph small
// enough for exact reliability.
func randomSmallGraph(r *rand.Rand, directed bool) *ugraph.Graph {
	n := 5 + r.Intn(3)
	g := ugraph.New(n, directed)
	for attempts := 0; attempts < 14 && g.M() < 12; attempts++ {
		u := ugraph.NodeID(r.Intn(n))
		v := ugraph.NodeID(r.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 0.2+0.6*r.Float64())
	}
	return g
}

func TestMonteCarloMatchesExact(t *testing.T) {
	r := rng.New(101)
	mc := NewMonteCarlo(40000, 1)
	for trial := 0; trial < 8; trial++ {
		g := randomSmallGraph(r, trial%2 == 0)
		s, tt := ugraph.NodeID(0), ugraph.NodeID(g.N()-1)
		exact, err := g.ExactReliability(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		got := mc.Reliability(g, s, tt)
		if math.Abs(got-exact) > 0.015 {
			t.Errorf("trial %d: MC=%v exact=%v", trial, got, exact)
		}
	}
}

func TestRSSMatchesExact(t *testing.T) {
	r := rng.New(202)
	rs := NewRSS(8000, 2)
	for trial := 0; trial < 8; trial++ {
		g := randomSmallGraph(r, trial%2 == 1)
		s, tt := ugraph.NodeID(0), ugraph.NodeID(g.N()-1)
		exact, err := g.ExactReliability(s, tt)
		if err != nil {
			t.Fatal(err)
		}
		got := rs.Reliability(g, s, tt)
		if math.Abs(got-exact) > 0.015 {
			t.Errorf("trial %d: RSS=%v exact=%v", trial, got, exact)
		}
	}
}

func TestSourceEqualsTarget(t *testing.T) {
	g := ugraph.New(3, true)
	g.MustAddEdge(0, 1, 0.5)
	if got := NewMonteCarlo(10, 1).Reliability(g, 1, 1); got != 1 {
		t.Fatalf("MC R(v,v) = %v", got)
	}
	if got := NewRSS(10, 1).Reliability(g, 1, 1); got != 1 {
		t.Fatalf("RSS R(v,v) = %v", got)
	}
}

func TestCertainPaths(t *testing.T) {
	// All edges probability 1 → reliability exactly 1, and RSS should
	// detect certainty without any sampling noise.
	g := ugraph.New(4, true)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	if got := NewRSS(10, 3).Reliability(g, 0, 3); got != 1 {
		t.Fatalf("certain path RSS = %v, want exactly 1", got)
	}
	if got := NewMonteCarlo(10, 3).Reliability(g, 0, 3); got != 1 {
		t.Fatalf("certain path MC = %v, want exactly 1", got)
	}
	// Disconnected target → exactly 0.
	if got := NewRSS(10, 3).Reliability(g, 3, 0); got != 0 {
		t.Fatalf("unreachable RSS = %v, want exactly 0", got)
	}
}

func TestReliabilityFromDirectedPath(t *testing.T) {
	// 0 →(0.8) 1 →(0.5) 2; exact vector from 0 is [1, 0.8, 0.4].
	g := ugraph.New(3, true)
	g.MustAddEdge(0, 1, 0.8)
	g.MustAddEdge(1, 2, 0.5)
	for _, s := range []Sampler{NewMonteCarlo(60000, 4), NewRSS(20000, 4)} {
		vec := s.ReliabilityFrom(g, 0)
		want := []float64{1, 0.8, 0.4}
		for i := range want {
			if math.Abs(vec[i]-want[i]) > 0.015 {
				t.Errorf("%s: vec[%d] = %v, want %v", s.Name(), i, vec[i], want[i])
			}
		}
	}
}

func TestReliabilityToDirectedPath(t *testing.T) {
	// 0 →(0.8) 1 →(0.5) 2; reliability to 2 is [0.4, 0.5, 1].
	g := ugraph.New(3, true)
	g.MustAddEdge(0, 1, 0.8)
	g.MustAddEdge(1, 2, 0.5)
	for _, s := range []Sampler{NewMonteCarlo(60000, 5), NewRSS(20000, 5)} {
		vec := s.ReliabilityTo(g, 2)
		want := []float64{0.4, 0.5, 1}
		for i := range want {
			if math.Abs(vec[i]-want[i]) > 0.015 {
				t.Errorf("%s: vec[%d] = %v, want %v", s.Name(), i, vec[i], want[i])
			}
		}
	}
}

func TestUndirectedVectorSymmetry(t *testing.T) {
	// In an undirected graph, ReliabilityFrom and ReliabilityTo estimate
	// the same quantity.
	g := ugraph.New(4, false)
	g.MustAddEdge(0, 1, 0.7)
	g.MustAddEdge(1, 2, 0.6)
	g.MustAddEdge(2, 3, 0.5)
	g.MustAddEdge(0, 2, 0.4)
	mc := NewMonteCarlo(40000, 6)
	from := mc.ReliabilityFrom(g, 0)
	to := mc.ReliabilityTo(g, 0)
	for i := range from {
		if math.Abs(from[i]-to[i]) > 0.02 {
			t.Errorf("node %d: from=%v to=%v", i, from[i], to[i])
		}
	}
}

func TestVectorMatchesScalar(t *testing.T) {
	r := rng.New(77)
	g := randomSmallGraph(r, true)
	mc := NewMonteCarlo(40000, 7)
	vec := mc.ReliabilityFrom(g, 0)
	for v := 1; v < g.N(); v++ {
		scalar := mc.Reliability(g, 0, ugraph.NodeID(v))
		if math.Abs(vec[v]-scalar) > 0.02 {
			t.Errorf("node %d: vector=%v scalar=%v", v, vec[v], scalar)
		}
	}
}

// TestRSSVarianceReduction verifies the §5.3 claim: at equal sample size,
// the RSS estimator has lower variance than plain MC.
func TestRSSVarianceReduction(t *testing.T) {
	// A layered graph with many mid-probability edges: high MC variance.
	r := rng.New(88)
	g := ugraph.New(24, true)
	for layer := 0; layer < 5; layer++ {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				u := ugraph.NodeID(layer*4 + i)
				v := ugraph.NodeID((layer+1)*4 + j)
				if r.Float64() < 0.7 {
					g.MustAddEdge(u, v, 0.15+0.5*r.Float64())
				}
			}
		}
	}
	const z, reps = 300, 60
	var mcEst, rssEst []float64
	for i := 0; i < reps; i++ {
		mcEst = append(mcEst, NewMonteCarlo(z, int64(1000+i)).Reliability(g, 0, 23))
		rssEst = append(rssEst, NewRSS(z, int64(2000+i)).Reliability(g, 0, 23))
	}
	vMC, vRSS := stats.Variance(mcEst), stats.Variance(rssEst)
	if vRSS > vMC {
		t.Errorf("RSS variance %v not below MC variance %v", vRSS, vMC)
	}
	// Both must agree on the mean.
	if math.Abs(stats.Mean(mcEst)-stats.Mean(rssEst)) > 0.05 {
		t.Errorf("estimator means diverge: MC %v RSS %v", stats.Mean(mcEst), stats.Mean(rssEst))
	}
}

func TestRSSUnbiasedOnUndirected(t *testing.T) {
	r := rng.New(99)
	rs := NewRSS(12000, 9)
	for trial := 0; trial < 5; trial++ {
		g := randomSmallGraph(r, false)
		exact, err := g.ExactReliability(0, ugraph.NodeID(g.N()-1))
		if err != nil {
			t.Fatal(err)
		}
		got := rs.Reliability(g, 0, ugraph.NodeID(g.N()-1))
		if math.Abs(got-exact) > 0.02 {
			t.Errorf("trial %d: RSS=%v exact=%v", trial, got, exact)
		}
	}
}

func TestEstimatesWithinUnitInterval(t *testing.T) {
	r := rng.New(111)
	mc := NewMonteCarlo(500, 10)
	rs := NewRSS(500, 10)
	for trial := 0; trial < 20; trial++ {
		g := randomSmallGraph(r, trial%2 == 0)
		s, tt := ugraph.NodeID(r.Intn(g.N())), ugraph.NodeID(r.Intn(g.N()))
		for _, est := range []float64{mc.Reliability(g, s, tt), rs.Reliability(g, s, tt)} {
			if est < 0 || est > 1 {
				t.Fatalf("estimate %v outside [0,1]", est)
			}
		}
	}
}

func TestSetSampleSize(t *testing.T) {
	mc := NewMonteCarlo(100, 1)
	mc.SetSampleSize(250)
	if mc.SampleSize() != 250 {
		t.Fatal("MC SetSampleSize ignored")
	}
	rs := NewRSS(100, 1)
	rs.SetSampleSize(400)
	if rs.SampleSize() != 400 {
		t.Fatal("RSS SetSampleSize ignored")
	}
	rs.SetWidth(0)
	rs.SetThreshold(0) // clamped, must not panic or loop
	g := ugraph.New(3, true)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.5)
	got := rs.Reliability(g, 0, 2)
	if got < 0 || got > 1 {
		t.Fatalf("clamped RSS estimate %v", got)
	}
}
