// Package eigen implements the spectral machinery for the eigenvalue-based
// baseline of §3.4 (Algorithm 2, after Chen et al. TKDD'16): power
// iteration for the leading eigenvalue with its left and right
// eigenvectors of the probability-weighted adjacency matrix, and the
// eigen-score edge-addition rule.
package eigen

import (
	"context"
	"math"

	"repro/internal/pq"
	"repro/internal/ugraph"
)

// Leading computes the leading eigenvalue λ of the adjacency matrix
// A[u][v] = p(u→v) together with the associated right eigenvector v
// (A·v = λv) and left eigenvector u (Aᵀ·u = λu), via power iteration.
// Vectors are L2-normalized and non-negative (Perron-Frobenius). For
// undirected graphs the two vectors coincide. iters bounds the iteration
// count (<=0 uses 200); convergence stops early at 1e-12 relative change.
// The power iterations poll ctx (nil allowed) once per sweep; cancellation
// stops at the current iterate — a valid but unconverged vector that
// callers observing ctx.Err() discard.
func Leading(ctx context.Context, g *ugraph.Graph, iters int) (lambda float64, left, right []float64) {
	if iters <= 0 {
		iters = 200
	}
	right = powerIteration(ctx, g, iters, false)
	if g.Directed() {
		left = powerIteration(ctx, g, iters, true)
	} else {
		left = append([]float64(nil), right...)
	}
	// Rayleigh quotient λ = rᵀ A r for the normalized right vector.
	lambda = 0
	for _, e := range g.Edges() {
		lambda += right[e.U] * e.P * right[e.V]
		if !g.Directed() {
			lambda += right[e.V] * e.P * right[e.U]
		}
	}
	return lambda, left, right
}

// powerIteration returns the normalized dominant eigenvector of A
// (transpose=false) or Aᵀ (transpose=true).
func powerIteration(ctx context.Context, g *ugraph.Graph, iters int, transpose bool) []float64 {
	n := g.N()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	for it := 0; it < iters; it++ {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		for i := range y {
			y[i] = 0
		}
		for _, e := range g.Edges() {
			if g.Directed() {
				if transpose {
					y[e.U] += e.P * x[e.V]
				} else {
					y[e.V] += e.P * x[e.U]
				}
			} else {
				y[e.V] += e.P * x[e.U]
				y[e.U] += e.P * x[e.V]
			}
		}
		norm := 0.0
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return y // no edges: zero vector
		}
		diff := 0.0
		for i := range y {
			y[i] /= norm
			d := y[i] - x[i]
			diff += d * d
		}
		x, y = y, x
		if diff < 1e-24 {
			break
		}
	}
	return x
}

// ScoredEdge is a potential new edge with its eigen-score u(i)·v(j).
type ScoredEdge struct {
	U, V  ugraph.NodeID
	Score float64
}

// TopEdges implements Algorithm 2: it selects the k missing edges that
// maximize the leading-eigenvalue gain approximation Σ u(i)·v(j), drawing
// left endpoints from the top-(k+din) nodes by left eigen-score and right
// endpoints from the top-(k+dout) nodes by right eigen-score, where din and
// dout are the maximum in- and out-degrees.
func TopEdges(ctx context.Context, g *ugraph.Graph, k int) []ScoredEdge {
	if k <= 0 {
		return nil
	}
	_, left, right := Leading(ctx, g, 0)
	din, dout := maxDegrees(g)
	srcPool := topNodes(left, k+din)
	dstPool := topNodes(right, k+dout)
	sel := pq.NewTopK[ScoredEdge](k)
	for _, i := range srcPool {
		for _, j := range dstPool {
			if i == j || g.HasEdge(i, j) {
				continue
			}
			score := left[i] * right[j]
			sel.Offer(score, ScoredEdge{U: i, V: j, Score: score})
		}
	}
	items := sel.Items()
	out := make([]ScoredEdge, len(items))
	for i, it := range items {
		out[i] = it.Value
	}
	return out
}

func maxDegrees(g *ugraph.Graph) (din, dout int) {
	for v := 0; v < g.N(); v++ {
		if d := len(g.Out(ugraph.NodeID(v))); d > dout {
			dout = d
		}
		if d := len(g.In(ugraph.NodeID(v))); d > din {
			din = d
		}
	}
	return din, dout
}

func topNodes(scores []float64, k int) []ugraph.NodeID {
	sel := pq.NewTopK[ugraph.NodeID](k)
	for v, s := range scores {
		sel.Offer(s, ugraph.NodeID(v))
	}
	items := sel.Items()
	out := make([]ugraph.NodeID, len(items))
	for i, it := range items {
		out[i] = it.Value
	}
	return out
}
