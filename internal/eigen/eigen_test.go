package eigen

import (
	"context"

	"math"
	"testing"

	"repro/internal/ugraph"
)

func TestLeadingTwoNodeSymmetric(t *testing.T) {
	// A = [[0, 0.5], [0.5, 0]] has λ = 0.5 with eigenvector (1,1)/√2.
	g := ugraph.New(2, false)
	g.MustAddEdge(0, 1, 0.5)
	lambda, left, right := Leading(context.Background(), g, 0)
	if math.Abs(lambda-0.5) > 1e-9 {
		t.Fatalf("λ = %v, want 0.5", lambda)
	}
	inv := 1 / math.Sqrt(2)
	for i := 0; i < 2; i++ {
		if math.Abs(right[i]-inv) > 1e-6 || math.Abs(left[i]-inv) > 1e-6 {
			t.Fatalf("vectors = %v / %v, want (≈0.707, ≈0.707)", left, right)
		}
	}
}

func TestLeadingDirectedCycle(t *testing.T) {
	// Directed 3-cycle with probability p: spectral radius p, uniform
	// eigenvectors.
	const p = 0.4
	g := ugraph.New(3, true)
	g.MustAddEdge(0, 1, p)
	g.MustAddEdge(1, 2, p)
	g.MustAddEdge(2, 0, p)
	lambda, left, right := Leading(context.Background(), g, 0)
	if math.Abs(lambda-p) > 1e-6 {
		t.Fatalf("λ = %v, want %v", lambda, p)
	}
	inv := 1 / math.Sqrt(3)
	for i := 0; i < 3; i++ {
		if math.Abs(right[i]-inv) > 1e-6 || math.Abs(left[i]-inv) > 1e-6 {
			t.Fatalf("vectors = %v / %v", left, right)
		}
	}
}

func TestLeadingEmptyGraph(t *testing.T) {
	g := ugraph.New(4, true)
	lambda, _, right := Leading(context.Background(), g, 0)
	if lambda != 0 {
		t.Fatalf("λ = %v for empty graph, want 0", lambda)
	}
	for _, v := range right {
		if v != 0 {
			t.Fatalf("eigenvector = %v, want zeros", right)
		}
	}
}

func TestLeadingDominantComponent(t *testing.T) {
	// A dense triangle (high λ) plus an isolated weak edge: the
	// eigenvector must concentrate on the triangle.
	g := ugraph.New(5, false)
	g.MustAddEdge(0, 1, 0.9)
	g.MustAddEdge(1, 2, 0.9)
	g.MustAddEdge(0, 2, 0.9)
	g.MustAddEdge(3, 4, 0.1)
	lambda, _, right := Leading(context.Background(), g, 0)
	if math.Abs(lambda-1.8) > 1e-6 { // triangle: λ = 2·0.9
		t.Fatalf("λ = %v, want 1.8", lambda)
	}
	if right[3] > 1e-6 || right[4] > 1e-6 {
		t.Fatalf("mass on weak component: %v", right)
	}
}

func TestTopEdgesAvoidsExistingAndSelf(t *testing.T) {
	g := ugraph.New(4, false)
	g.MustAddEdge(0, 1, 0.9)
	g.MustAddEdge(1, 2, 0.9)
	g.MustAddEdge(0, 2, 0.9)
	edges := TopEdges(context.Background(), g, 3)
	if len(edges) == 0 {
		t.Fatal("no edges proposed")
	}
	for _, e := range edges {
		if e.U == e.V {
			t.Fatalf("self loop proposed: %+v", e)
		}
		if g.HasEdge(e.U, e.V) {
			t.Fatalf("existing edge proposed: %+v", e)
		}
	}
	// Node 3 is isolated; the top proposals must connect the hub triangle
	// to it (the only missing pairs involve node 3).
	for _, e := range edges {
		if e.U != 3 && e.V != 3 {
			t.Fatalf("unexpected proposal %+v", e)
		}
	}
}

func TestTopEdgesScoresDescending(t *testing.T) {
	g := ugraph.New(6, true)
	g.MustAddEdge(0, 1, 0.8)
	g.MustAddEdge(1, 2, 0.8)
	g.MustAddEdge(2, 0, 0.8)
	g.MustAddEdge(3, 4, 0.2)
	edges := TopEdges(context.Background(), g, 4)
	for i := 1; i < len(edges); i++ {
		if edges[i].Score > edges[i-1].Score+1e-12 {
			t.Fatalf("scores out of order: %v", edges)
		}
	}
}

func TestTopEdgesZeroBudget(t *testing.T) {
	g := ugraph.New(3, false)
	g.MustAddEdge(0, 1, 0.5)
	if got := TopEdges(context.Background(), g, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

func TestLeadingCancelledContextStopsEarly(t *testing.T) {
	g := ugraph.New(3, false)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The iteration stops at the initial vector: still normalized, not
	// converged; callers observing ctx.Err() discard it. No panic, no hang.
	_, left, right := Leading(ctx, g, 0)
	if len(left) != 3 || len(right) != 3 {
		t.Fatalf("cancelled Leading returned malformed vectors: %v %v", left, right)
	}
}
