package replication

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/store"
)

// DefaultHeartbeat is the feed's idle heartbeat cadence when the caller
// passes 0.
const DefaultHeartbeat = time.Second

// ServeFeed streams the tap's feed over one long-lived HTTP response —
// the handler behind GET /v2/replication/feed/{name}. The ?from query
// parameter is the subscriber's last applied epoch (absent or 0 forces a
// bootstrap): the response is a frame stream of an optional snapshot, the
// backlog, then live batches as the primary commits them, with heartbeats
// carrying the primary's epoch while idle. The stream ends when the client
// disconnects, the dataset closes, or the subscriber falls too far behind;
// the follower reconnects and resumes.
func ServeFeed(w http.ResponseWriter, r *http.Request, tap *Tap, heartbeat time.Duration) {
	if heartbeat <= 0 {
		heartbeat = DefaultHeartbeat
	}
	var from uint64
	if s := r.URL.Query().Get("from"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad from epoch", http.StatusBadRequest)
			return
		}
		from = v
	}
	sub, err := tap.Subscribe(from)
	if err != nil {
		if errors.Is(err, store.ErrClosed) {
			http.Error(w, "dataset closed", http.StatusGone)
		} else {
			http.Error(w, "feed unavailable: "+err.Error(), http.StatusServiceUnavailable)
		}
		return
	}
	defer sub.Close()

	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	w.Header().Set("Content-Type", "application/x-repro-feed")
	w.Header().Set("X-Repro-Epoch", strconv.FormatUint(tap.Epoch(), 10))
	w.WriteHeader(http.StatusOK)

	if sub.Snapshot != nil {
		if err := WriteSnapshot(w, sub.Snapshot); err != nil {
			return
		}
	}
	for _, b := range sub.Backlog {
		if err := WriteBatch(w, b); err != nil {
			return
		}
	}
	// One heartbeat right after the backlog: the follower learns the
	// primary epoch (and that it is caught up) without waiting a tick.
	if err := WriteHeartbeat(w, tap.Epoch()); err != nil {
		return
	}
	flush()

	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case b, ok := <-sub.C:
			if !ok {
				// Dropped (slow subscriber) or dataset closed: end the
				// stream so the follower reconnects and resumes.
				return
			}
			if err := WriteBatch(w, b); err != nil {
				return
			}
			// Drain whatever else is queued before flushing once.
			for drained := false; !drained; {
				select {
				case nb, ok := <-sub.C:
					if !ok {
						flush()
						return
					}
					if err := WriteBatch(w, nb); err != nil {
						return
					}
				default:
					drained = true
				}
			}
			flush()
		case <-ticker.C:
			if err := WriteHeartbeat(w, tap.Epoch()); err != nil {
				return
			}
			flush()
		}
	}
}
