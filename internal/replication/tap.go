package replication

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/store"
)

// subBuffer is how many committed batches a slow subscriber may fall
// behind before the tap drops it. A dropped subscriber's feed ends; the
// follower reconnects and resumes from its last applied epoch (or
// re-bootstraps if the WAL has moved on) — backpressure must never reach
// the primary's Apply path.
const subBuffer = 256

// Tap wraps a dataset's durable store and publishes every committed batch
// to subscribers — the primary half of replication. It implements
// store.Store, so it slots between the engine and its filesystem store via
// Catalog.SetStoreWrapper: AppendBatch delegates to the inner store first
// (the batch is fsynced and durable) and only then offers the batch to
// each subscriber. The engine's acknowledgement ordering is therefore
// unchanged, and a replica can never observe a batch the primary could
// lose in a crash.
//
// The engine serializes its store calls, but Subscribe arrives from feed
// handlers concurrently, so the tap carries its own mutex. Holding it
// across Subscribe's inner Recover AND the subscriber registration is the
// crux: the backlog and the live stream are cut at the same epoch, so a
// subscriber sees every batch exactly once — no gap, no duplicate.
type Tap struct {
	mu     sync.Mutex
	inner  store.Store
	subs   map[*Subscription]struct{}
	closed bool

	epoch atomic.Uint64 // last committed epoch the tap has observed
	drops atomic.Uint64 // subscribers dropped for falling behind
}

// NewTap wraps inner. The tap owns it: Close closes it.
func NewTap(inner store.Store) *Tap {
	return &Tap{inner: inner, subs: make(map[*Subscription]struct{})}
}

// AppendBatch durably appends b through the inner store, then publishes it
// to every subscriber. A subscriber whose buffer is full is dropped (its
// channel closes; the follower reconnects) rather than ever blocking the
// append path.
func (t *Tap) AppendBatch(b store.Batch) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.inner.AppendBatch(b); err != nil {
		return err
	}
	t.epoch.Store(b.Epoch)
	for sub := range t.subs {
		select {
		case sub.c <- b:
		default:
			t.dropLocked(sub)
		}
	}
	return nil
}

// Checkpoint delegates; subscribers are unaffected (their live stream is
// the channel, not the WAL file the checkpoint truncates).
func (t *Tap) Checkpoint(s *store.Snapshot) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.inner.Checkpoint(s); err != nil {
		return err
	}
	t.epoch.Store(s.Epoch)
	return nil
}

// Recover delegates. The engine calls it during construction, which is
// also how the tap learns the recovered epoch before any Append.
func (t *Tap) Recover() (*store.Snapshot, []store.Batch, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap, batches, err := t.inner.Recover()
	if err != nil {
		return nil, nil, err
	}
	t.epoch.Store(tailEpoch(snap, batches))
	return snap, batches, err
}

// Reset delegates (fresh dataset initialization).
func (t *Tap) Reset() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.inner.Reset()
}

// Close closes every subscription and the inner store. Idempotent.
func (t *Tap) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	for sub := range t.subs {
		delete(t.subs, sub)
		close(sub.c)
	}
	return t.inner.Close()
}

// Epoch returns the last committed epoch the tap has observed — what feed
// heartbeats advertise.
func (t *Tap) Epoch() uint64 { return t.epoch.Load() }

// Subscribers returns the current live subscription count.
func (t *Tap) Subscribers() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.subs)
}

// Drops returns how many subscribers were dropped for falling behind.
func (t *Tap) Drops() uint64 { return t.drops.Load() }

func (t *Tap) dropLocked(sub *Subscription) {
	if _, ok := t.subs[sub]; !ok {
		return
	}
	delete(t.subs, sub)
	close(sub.c)
	t.drops.Add(1)
}

// tailEpoch is the epoch of recovered state: the last WAL batch, or the
// checkpoint when the WAL is empty.
func tailEpoch(snap *store.Snapshot, batches []store.Batch) uint64 {
	if len(batches) > 0 {
		return batches[len(batches)-1].Epoch
	}
	return snap.Epoch
}

// Subscription is one replica's view of the feed: an optional bootstrap
// snapshot, the batch backlog committed before the subscription, and a
// live channel of batches committed after it — cut at one epoch with no
// gap or overlap between them.
type Subscription struct {
	// Snapshot is non-nil when the subscriber must (re-)bootstrap: its
	// requested epoch was not found in the primary's recoverable chain.
	Snapshot *store.Snapshot
	// Backlog holds the already-committed batches to replay after the
	// snapshot (or directly, for a tail resume), in commit order.
	Backlog []store.Batch
	// C streams batches committed after Subscribe. It closes when the
	// subscriber falls too far behind or the tap closes; the follower
	// reconnects.
	C <-chan store.Batch

	c chan store.Batch
	t *Tap
}

// Subscribe registers a feed subscription resuming from epoch `from` (the
// subscriber's last applied epoch; 0 forces a bootstrap). If `from` is in
// the primary's recoverable chain — the checkpoint epoch or any WAL batch
// epoch — the subscription is a tail resume: no snapshot, backlog =
// batches after `from`. Anywhere else is a gap (the WAL was checkpointed
// past it, or the subscriber diverged): the subscription ships the full
// checkpoint + WAL backlog for a re-bootstrap.
func (t *Tap) Subscribe(from uint64) (*Subscription, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("replication: subscribe: %w", store.ErrClosed)
	}
	snap, batches, err := t.inner.Recover()
	if err != nil {
		return nil, fmt.Errorf("replication: subscribe: %w", err)
	}
	t.epoch.Store(tailEpoch(snap, batches))
	sub := &Subscription{c: make(chan store.Batch, subBuffer), t: t}
	sub.C = sub.c
	switch {
	case from != 0 && from == snap.Epoch:
		sub.Backlog = batches
	case from != 0 && indexOfEpoch(batches, from) >= 0:
		sub.Backlog = batches[indexOfEpoch(batches, from)+1:]
	default:
		sub.Snapshot = snap
		sub.Backlog = batches
	}
	t.subs[sub] = struct{}{}
	return sub, nil
}

func indexOfEpoch(batches []store.Batch, epoch uint64) int {
	for i, b := range batches {
		if b.Epoch == epoch {
			return i
		}
	}
	return -1
}

// Close unregisters the subscription; safe to call concurrently with the
// tap dropping it.
func (s *Subscription) Close() {
	s.t.mu.Lock()
	if _, ok := s.t.subs[s]; ok {
		delete(s.t.subs, s)
		close(s.c)
	}
	s.t.mu.Unlock()
}
