package replication

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/store"
)

// ErrFeedNotFound reports a feed endpoint answering 404/410: the dataset
// does not exist (or is no longer replicable) on the primary. The follower
// keeps retrying — datasets appear and disappear at runtime — but managers
// may use it to retire followers for dropped datasets.
var ErrFeedNotFound = errors.New("replication: feed not found on primary")

// FollowerConfig configures one dataset's follower.
type FollowerConfig struct {
	// Name is the dataset name on the primary.
	Name string
	// Primary is the primary's base URL, e.g. "http://127.0.0.1:8080".
	Primary string
	// Client serves the feed requests; nil uses a client with no overall
	// timeout (the feed is long-lived — transport-level timeouts only).
	Client *http.Client
	// Bootstrap builds the replica engine from the first shipped snapshot.
	// Later snapshots (gap re-bootstraps) reset the same engine in place
	// via Engine.ResetToSnapshot.
	Bootstrap func(s *store.Snapshot) (*repro.Engine, error)
	// Backoff is the reconnect delay; 0 means 500ms.
	Backoff time.Duration
	// Logf, when non-nil, receives reconnect/bootstrap log lines.
	Logf func(format string, args ...any)
}

// FollowerStats is a point-in-time snapshot of one follower's progress.
type FollowerStats struct {
	// LastAppliedEpoch is the replica's committed epoch; PrimaryEpoch the
	// primary's epoch as of the last frame seen; Lag their difference
	// (0 while no heartbeat has arrived yet).
	LastAppliedEpoch, PrimaryEpoch, Lag uint64
	// Reconnects counts feed connections that ended and were retried;
	// Bootstraps counts snapshot loads (1 for a clean lifetime; more means
	// gaps forced full re-bootstraps); BatchesApplied counts replicated
	// batches committed through ApplyReplicated.
	Reconnects, Bootstraps, BatchesApplied uint64
}

// Follower replicates one dataset from a primary's feed: it bootstraps an
// engine from the shipped checkpoint, applies the batch stream through
// Engine.ApplyReplicated, reconnects with resume on any stream end, and
// re-bootstraps from a fresh snapshot when it detects a gap. Create with
// NewFollower, drive with Run, observe with Stats.
type Follower struct {
	cfg FollowerConfig

	mu  sync.Mutex
	eng *repro.Engine

	ready     chan struct{} // closed after the first successful bootstrap
	readyOnce sync.Once

	// rebootstrap forces the next connect to ask from=0 after a gap.
	rebootstrap atomic.Bool

	lastApplied, primaryEpoch              atomic.Uint64
	reconnects, bootstraps, batchesApplied atomic.Uint64
}

// NewFollower builds a follower; it does nothing until Run.
func NewFollower(cfg FollowerConfig) *Follower {
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	return &Follower{cfg: cfg, ready: make(chan struct{})}
}

// Engine returns the replica engine, or nil before the first bootstrap.
func (f *Follower) Engine() *repro.Engine {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eng
}

// Ready returns a channel closed once the replica has bootstrapped and is
// serving (Engine is non-nil from then on).
func (f *Follower) Ready() <-chan struct{} { return f.ready }

// Stats reports the follower's replication progress.
func (f *Follower) Stats() FollowerStats {
	st := FollowerStats{
		LastAppliedEpoch: f.lastApplied.Load(),
		PrimaryEpoch:     f.primaryEpoch.Load(),
		Reconnects:       f.reconnects.Load(),
		Bootstraps:       f.bootstraps.Load(),
		BatchesApplied:   f.batchesApplied.Load(),
	}
	if st.PrimaryEpoch > st.LastAppliedEpoch {
		st.Lag = st.PrimaryEpoch - st.LastAppliedEpoch
	}
	return st
}

// Run follows the feed until ctx fires. Every stream end — network cut,
// primary restart, slow-subscriber drop — is retried with backoff,
// resuming from the last applied epoch; chain gaps re-bootstrap from a
// fresh snapshot. Run returns ctx.Err() on cancellation, or the terminal
// error if the replica engine itself rejects state (closed engine).
func (f *Follower) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := f.stream(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, repro.ErrClosed) {
			return err
		}
		f.reconnects.Add(1)
		f.logf("replication: %s: feed ended (%v), retrying in %v", f.cfg.Name, err, f.cfg.Backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(f.cfg.Backoff):
		}
	}
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// stream runs one feed connection to completion.
func (f *Follower) stream(ctx context.Context) error {
	from := f.lastApplied.Load()
	if f.rebootstrap.Load() || f.Engine() == nil {
		from = 0
	}
	u := fmt.Sprintf("%s/v2/replication/feed/%s?from=%d",
		f.cfg.Primary, url.PathEscape(f.cfg.Name), from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound, http.StatusGone:
		return fmt.Errorf("%w: %s (HTTP %d)", ErrFeedNotFound, f.cfg.Name, resp.StatusCode)
	default:
		return fmt.Errorf("replication: feed %s: HTTP %d", f.cfg.Name, resp.StatusCode)
	}

	fr := NewFrameReader(bufio.NewReader(resp.Body))
	for {
		frame, err := fr.Next()
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("replication: feed %s: stream closed", f.cfg.Name)
			}
			return err
		}
		switch frame.Kind {
		case FrameSnapshot:
			if err := f.applySnapshot(frame.Snapshot); err != nil {
				return err
			}
		case FrameBatch:
			eng := f.Engine()
			if eng == nil {
				return fmt.Errorf("%w: batch before snapshot on a bootstrap stream", ErrBadFrame)
			}
			epoch, err := eng.ApplyReplicated(frame.Batch)
			if err != nil {
				if errors.Is(err, repro.ErrReplicaGap) {
					// The stream no longer chains onto local state —
					// reconnect from zero and let the primary ship a
					// fresh snapshot.
					f.rebootstrap.Store(true)
					f.logf("replication: %s: %v; forcing re-bootstrap", f.cfg.Name, err)
				}
				return err
			}
			f.lastApplied.Store(epoch)
			if frame.Batch.Epoch > f.primaryEpoch.Load() {
				f.primaryEpoch.Store(frame.Batch.Epoch)
			}
			f.batchesApplied.Add(1)
		case FrameHeartbeat:
			f.primaryEpoch.Store(frame.Epoch)
		}
	}
}

func (f *Follower) applySnapshot(s *store.Snapshot) error {
	f.mu.Lock()
	eng := f.eng
	f.mu.Unlock()
	if eng == nil {
		built, err := f.cfg.Bootstrap(s)
		if err != nil {
			return fmt.Errorf("replication: %s: bootstrap: %w", f.cfg.Name, err)
		}
		f.mu.Lock()
		f.eng = built
		f.mu.Unlock()
	} else if err := eng.ResetToSnapshot(s); err != nil {
		return err
	}
	f.rebootstrap.Store(false)
	f.lastApplied.Store(s.Epoch)
	f.bootstraps.Add(1)
	f.readyOnce.Do(func() { close(f.ready) })
	f.logf("replication: %s: bootstrapped at epoch %d", f.cfg.Name, s.Epoch)
	return nil
}
