// Package replication streams a primary engine's committed mutation
// batches to read replicas.
//
// The design reuses the durability layer end to end. A primary wraps each
// dataset's store.Store in a Tap: every batch the engine fsyncs through
// AppendBatch is published — post-fsync, pre-rotation — to subscribed
// feeds. A replica join is exactly crash recovery run over the network:
// Subscribe calls the inner store's Recover and ships the newest
// checkpoint plus the WAL tail, then live batches as they commit. The
// follower applies them through Engine.ApplyReplicated — the same
// applyMutationTo machinery recovery replays — so a replica at epoch E
// answers every query bit-identically to the primary's pinned-epoch-E
// snapshot.
//
// The wire format is a length-prefixed frame stream over a long-lived
// HTTP response body:
//
//	frame    = [kind u8][len u32 LE][payload]
//	kind 1   = snapshot:  payload is one store.EncodeSnapshot image
//	kind 2   = batch:     payload is one store.EncodeBatch record
//	kind 3   = heartbeat: payload is the primary's current epoch (u64 LE)
//
// Batch payloads carry the WAL record verbatim — CRC32C frame included —
// so the feed inherits the codec's strictness: a flipped bit is a
// detected-corrupt frame, never a misparsed batch. PrevEpoch chain
// validation happens at apply time (ErrReplicaGap), which catches
// reordered, duplicated and skipped batches regardless of how the
// transport mangled them.
package replication

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/store"
)

// FrameKind tags one feed frame. Values are part of the wire format and
// must never be renumbered.
type FrameKind byte

const (
	// FrameSnapshot carries a full checkpoint image (store.EncodeSnapshot).
	FrameSnapshot FrameKind = 1
	// FrameBatch carries one committed WAL record (store.EncodeBatch).
	FrameBatch FrameKind = 2
	// FrameHeartbeat carries the primary's current epoch; it keeps idle
	// connections alive and lets followers measure lag while no mutations
	// flow.
	FrameHeartbeat FrameKind = 3
)

const (
	frameHeaderLen = 5 // kind u8 + len u32
	// maxFrameBytes bounds a frame payload: large enough for a checkpoint
	// of ~64M edges, small enough that a corrupt length field cannot make
	// a follower allocate unbounded memory.
	maxFrameBytes = 1 << 30
	heartbeatLen  = 8
)

// ErrBadFrame reports a feed frame that fails strict decoding: unknown
// kind, length out of range, or a payload the store codec rejects. A
// follower treats it as a broken connection and reconnects; it never
// applies a partially-decoded frame.
var ErrBadFrame = errors.New("replication: bad feed frame")

// Frame is one decoded feed frame; Kind selects which field is set.
type Frame struct {
	Kind FrameKind
	// Snapshot is set for FrameSnapshot.
	Snapshot *store.Snapshot
	// Batch is set for FrameBatch.
	Batch store.Batch
	// Epoch is set for FrameHeartbeat: the primary's epoch at send time.
	Epoch uint64
}

func writeFrame(w io.Writer, kind FrameKind, payload []byte) error {
	var hdr [frameHeaderLen]byte
	hdr[0] = byte(kind)
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// WriteSnapshot writes one snapshot frame.
func WriteSnapshot(w io.Writer, s *store.Snapshot) error {
	return writeFrame(w, FrameSnapshot, store.EncodeSnapshot(s))
}

// WriteBatch writes one batch frame.
func WriteBatch(w io.Writer, b store.Batch) error {
	return writeFrame(w, FrameBatch, store.EncodeBatch(b))
}

// WriteHeartbeat writes one heartbeat frame carrying the primary's epoch.
func WriteHeartbeat(w io.Writer, epoch uint64) error {
	var payload [heartbeatLen]byte
	binary.LittleEndian.PutUint64(payload[:], epoch)
	return writeFrame(w, FrameHeartbeat, payload[:])
}

// FrameReader decodes a feed frame stream. It is strict: every frame must
// decode completely and exactly, or Next returns an error wrapping
// ErrBadFrame — garbage can terminate a stream but never smuggle a batch
// through. Transport errors (including a connection cut mid-frame) pass
// through as the underlying read error.
type FrameReader struct {
	r io.Reader
}

// NewFrameReader wraps r. The reader should be buffered by the caller if
// the source is unbuffered; FrameReader itself reads exact frame lengths.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Next decodes the next frame. io.EOF is returned only at a clean frame
// boundary; a stream cut mid-frame is io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err != nil {
		return Frame{}, err // clean EOF between frames stays io.EOF
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	kind := FrameKind(hdr[0])
	plen := int64(binary.LittleEndian.Uint32(hdr[1:]))
	switch kind {
	case FrameSnapshot, FrameBatch, FrameHeartbeat:
	default:
		return Frame{}, fmt.Errorf("%w: unknown kind %d", ErrBadFrame, hdr[0])
	}
	if plen > maxFrameBytes {
		return Frame{}, fmt.Errorf("%w: payload length %d out of range", ErrBadFrame, plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	switch kind {
	case FrameSnapshot:
		s, err := store.DecodeSnapshot(payload)
		if err != nil {
			return Frame{}, fmt.Errorf("%w: snapshot: %v", ErrBadFrame, err)
		}
		return Frame{Kind: FrameSnapshot, Snapshot: s}, nil
	case FrameBatch:
		b, n, err := store.DecodeRecord(payload)
		if err != nil {
			return Frame{}, fmt.Errorf("%w: batch: %v", ErrBadFrame, err)
		}
		if n != len(payload) {
			return Frame{}, fmt.Errorf("%w: batch frame carries %d trailing bytes", ErrBadFrame, len(payload)-n)
		}
		return Frame{Kind: FrameBatch, Batch: b}, nil
	default: // FrameHeartbeat
		if len(payload) != heartbeatLen {
			return Frame{}, fmt.Errorf("%w: heartbeat payload %d bytes", ErrBadFrame, len(payload))
		}
		return Frame{Kind: FrameHeartbeat, Epoch: binary.LittleEndian.Uint64(payload)}, nil
	}
}
