package replication

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro"
	"repro/internal/store"
)

// replTestGraph is a 40-node graph large enough that every query kind is
// non-trivial and the solvers have real work to do.
func replTestGraph(t testing.TB) *repro.Graph {
	t.Helper()
	g := repro.NewGraph(40, false)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		g.MustAddEdge(repro.NodeID(i), repro.NodeID((i+1)%40), 0.3+0.5*r.Float64())
	}
	for k := 0; k < 50; k++ {
		u, v := repro.NodeID(r.Intn(40)), repro.NodeID(r.Intn(40))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 0.1+0.8*r.Float64())
	}
	return g
}

// randomBatch builds one valid mutation batch against oracle, applying it
// to oracle as it goes.
func randomBatch(t testing.TB, r *rand.Rand, oracle *repro.Graph) []repro.Mutation {
	t.Helper()
	count := 1 + r.Intn(4)
	muts := make([]repro.Mutation, 0, count)
	for len(muts) < count {
		switch r.Intn(3) {
		case 0:
			u, v := repro.NodeID(r.Intn(oracle.N())), repro.NodeID(r.Intn(oracle.N()))
			if u == v || oracle.HasEdge(u, v) {
				continue
			}
			p := 0.05 + 0.9*r.Float64()
			muts = append(muts, repro.AddEdge(u, v, p))
			oracle.MustAddEdge(u, v, p)
		case 1:
			edges := oracle.Edges()
			if len(edges) == 0 {
				continue
			}
			e := edges[r.Intn(len(edges))]
			p := 0.05 + 0.9*r.Float64()
			muts = append(muts, repro.SetProb(e.U, e.V, p))
			eid, _ := oracle.EdgeID(e.U, e.V)
			if err := oracle.SetProb(eid, p); err != nil {
				t.Fatal(err)
			}
		case 2:
			edges := oracle.Edges()
			if len(edges) <= 45 {
				continue
			}
			e := edges[r.Intn(len(edges))]
			muts = append(muts, repro.RemoveEdge(e.U, e.V))
			if err := oracle.RemoveEdge(e.U, e.V); err != nil {
				t.Fatal(err)
			}
		}
	}
	return muts
}

func stripTimings(r repro.Result) repro.Result {
	r.Solution.ElimTime, r.Solution.SelectTime = 0, 0
	r.Multi.Elapsed = 0
	r.TotalBudget.Elapsed = 0
	return r
}

// replicaPair is one primary (tapped, durable in dir) plus a feed server.
type replicaPair struct {
	tap     *Tap
	primary *repro.Engine
	srv     *httptest.Server
}

func newPrimary(t *testing.T, g *repro.Graph, opts ...repro.EngineOption) *replicaPair {
	t.Helper()
	fs, err := store.OpenFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tap := NewTap(fs)
	eng, err := repro.NewEngine(g, append(opts, repro.WithStore(tap))...)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/replication/feed/{name}", func(w http.ResponseWriter, r *http.Request) {
		ServeFeed(w, r, tap, 5*time.Millisecond)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	t.Cleanup(eng.Close)
	return &replicaPair{tap: tap, primary: eng, srv: srv}
}

func newTestFollower(t *testing.T, p *replicaPair, opts ...repro.EngineOption) *Follower {
	t.Helper()
	return NewFollower(FollowerConfig{
		Name:    "ds",
		Primary: p.srv.URL,
		Backoff: 10 * time.Millisecond,
		Bootstrap: func(s *store.Snapshot) (*repro.Engine, error) {
			g, err := repro.GraphFromSnapshot(s)
			if err != nil {
				return nil, err
			}
			return repro.NewEngine(g, opts...)
		},
		Logf: t.Logf,
	})
}

// waitConverged polls until the follower's applied epoch reaches want.
func waitConverged(t *testing.T, f *Follower, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if f.Stats().LastAppliedEpoch == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower stuck at epoch %d, want %d (stats %+v)",
		f.Stats().LastAppliedEpoch, want, f.Stats())
}

// TestReplicationDifferential is the acceptance differential: after an
// arbitrary mutation sequence on the primary, a caught-up replica answers
// every query kind bit-identically to the primary at the same epoch — all
// four sampler kinds — and a freshly joined replica bootstraps to the same
// state.
func TestReplicationDifferential(t *testing.T) {
	for _, kind := range []string{"mc", "rss", "lazy", "mcvec"} {
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			opts := []repro.EngineOption{
				repro.WithSamplerKind(kind), repro.WithSampleSize(120),
				repro.WithSeed(11), repro.WithWorkers(2), repro.WithResultCache(32),
			}
			g := replTestGraph(t)
			p := newPrimary(t, g, opts...)
			f := newTestFollower(t, p, opts...)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan struct{})
			go func() { defer close(done); f.Run(ctx) }()

			// Mutate while the follower streams live.
			r := rand.New(rand.NewSource(int64(len(kind))))
			oracle := g.Clone()
			for i := 0; i < 12; i++ {
				if _, err := p.primary.Apply(ctx, randomBatch(t, r, oracle)...); err != nil {
					t.Fatal(err)
				}
			}
			waitConverged(t, f, p.primary.Epoch())
			replica := f.Engine()
			if replica.Epoch() != p.primary.Epoch() {
				t.Fatalf("replica epoch %d != primary %d", replica.Epoch(), p.primary.Epoch())
			}

			qopt := &repro.Options{K: 1, Z: 100, Seed: 3, R: 6, L: 6, Workers: 2, Sampler: kind}
			queries := []repro.Query{
				{Kind: repro.QueryEstimate, S: 0, T: 39},
				{Kind: repro.QueryEstimateMany, Pairs: []repro.PairQuery{{S: 0, T: 39}, {S: 1, T: 17}, {S: 5, T: 5}}},
				{Kind: repro.QuerySolve, S: 0, T: 39, Options: qopt},
				{Kind: repro.QueryMulti, Sources: []repro.NodeID{0, 1}, Targets: []repro.NodeID{17, 39}, Options: qopt},
				{Kind: repro.QueryTotalBudget, S: 0, T: 39, Budget: 0.6, Options: qopt},
			}
			for i, q := range queries {
				pc, err := p.primary.Canonicalize(q)
				if err != nil {
					t.Fatal(err)
				}
				rc, err := replica.Canonicalize(q)
				if err != nil {
					t.Fatal(err)
				}
				if pc.Key() != rc.Key() {
					t.Fatalf("query %d (%s): fingerprint diverged:\n primary %s\n replica %s",
						i, q.Kind, pc.Key(), rc.Key())
				}
				want, err := p.primary.Run(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := replica.Run(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(stripTimings(got), stripTimings(want)) {
					t.Errorf("query %d (%s): replica diverged:\n primary %+v\n replica %+v",
						i, q.Kind, want, got)
				}
				if math.Float64bits(got.Reliability) != math.Float64bits(want.Reliability) {
					t.Errorf("query %d (%s): reliability bits diverged", i, q.Kind)
				}
			}

			// Replica-side accounting: replicated traffic counts separately
			// from local Apply traffic.
			st := replica.Stats()
			if st.Applies != 0 || st.MutationsApplied != 0 {
				t.Errorf("replica counted local applies: %+v", st)
			}
			if st.ReplicatedApplies == 0 || st.ReplicatedMutations == 0 {
				t.Errorf("replica counted no replicated applies: %+v", st)
			}

			// A fresh joiner bootstraps to the same state.
			f2 := newTestFollower(t, p, opts...)
			ctx2, cancel2 := context.WithCancel(context.Background())
			defer cancel2()
			go f2.Run(ctx2)
			waitConverged(t, f2, p.primary.Epoch())
			fresh := f2.Engine()
			if fresh.Epoch() != p.primary.Epoch() {
				t.Fatalf("fresh replica epoch %d != primary %d", fresh.Epoch(), p.primary.Epoch())
			}
			want, err := p.primary.Estimate(ctx, 0, 39)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fresh.Estimate(ctx, 0, 39)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("fresh replica estimate %x != primary %x", math.Float64bits(got), math.Float64bits(want))
			}
			cancel()
			<-done
		})
	}
}

// TestFollowerResumeAndRebootstrap covers the two reconnect paths: a
// follower that disconnects and finds its epoch still in the primary's WAL
// resumes from the tail (no new bootstrap); one whose epoch was
// checkpointed away re-bootstraps from a fresh snapshot — and both end
// bit-identical to the primary.
func TestFollowerResumeAndRebootstrap(t *testing.T) {
	opts := []repro.EngineOption{repro.WithSampleSize(80), repro.WithSeed(5)}
	g := replTestGraph(t)
	// A huge checkpoint threshold keeps every batch in the WAL until the
	// test forces a checkpoint explicitly.
	p := newPrimary(t, g, append(opts, repro.WithCheckpointEvery(1<<30, 1<<62))...)
	f := newTestFollower(t, p, opts...)
	ctx := context.Background()
	runCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() { defer close(done); f.Run(runCtx) }()

	r := rand.New(rand.NewSource(99))
	oracle := g.Clone()
	for i := 0; i < 4; i++ {
		if _, err := p.primary.Apply(ctx, randomBatch(t, r, oracle)...); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, f, p.primary.Epoch())
	if got := f.Stats().Bootstraps; got != 1 {
		t.Fatalf("bootstraps after initial join = %d, want 1", got)
	}

	// Kill the stream, mutate while offline, reconnect: the batches are
	// still in the WAL, so the follower resumes from the tail.
	cancel()
	<-done
	for i := 0; i < 3; i++ {
		if _, err := p.primary.Apply(ctx, randomBatch(t, r, oracle)...); err != nil {
			t.Fatal(err)
		}
	}
	runCtx2, cancel2 := context.WithCancel(ctx)
	done = make(chan struct{})
	go func() { defer close(done); f.Run(runCtx2) }()
	waitConverged(t, f, p.primary.Epoch())
	if got := f.Stats().Bootstraps; got != 1 {
		t.Fatalf("bootstraps after tail resume = %d, want 1 (resume must not re-bootstrap)", got)
	}

	// Kill again; checkpoint so the WAL truncates past the follower's
	// epoch, then mutate. Reconnect must detect the gap and re-bootstrap.
	cancel2()
	<-done
	if _, err := p.primary.Apply(ctx, randomBatch(t, r, oracle)...); err != nil {
		t.Fatal(err)
	}
	if err := p.primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.primary.Apply(ctx, randomBatch(t, r, oracle)...); err != nil {
		t.Fatal(err)
	}
	runCtx3, cancel3 := context.WithCancel(ctx)
	defer cancel3()
	done = make(chan struct{})
	go func() { defer close(done); f.Run(runCtx3) }()
	waitConverged(t, f, p.primary.Epoch())
	if got := f.Stats().Bootstraps; got != 2 {
		t.Fatalf("bootstraps after gap = %d, want 2 (gap must re-bootstrap)", got)
	}
	want, err := p.primary.Estimate(ctx, 0, 39)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Engine().Estimate(ctx, 0, 39)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(want) != math.Float64bits(got) {
		t.Fatalf("post-rebootstrap estimate diverged: %x != %x", math.Float64bits(got), math.Float64bits(want))
	}
	cancel3()
	<-done
}

// TestApplyReplicatedChainValidation: duplicates, skips and diverging
// batches are typed ErrReplicaGap rejections, never partial applications.
func TestApplyReplicatedChainValidation(t *testing.T) {
	g := replTestGraph(t)
	eng, err := repro.NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	base := eng.Epoch()
	b := store.Batch{Epoch: base + 1, Muts: []store.Mut{{Op: store.OpAddEdge, U: 0, V: 17, P: 0.5}}}
	epoch, err := eng.ApplyReplicated(b)
	if err != nil || epoch != base+1 {
		t.Fatalf("chained batch: epoch=%d err=%v", epoch, err)
	}
	// Duplicate: chains from base, replica is at base+1.
	if _, err := eng.ApplyReplicated(b); !errors.Is(err, repro.ErrReplicaGap) {
		t.Fatalf("duplicate batch: %v, want ErrReplicaGap", err)
	}
	// Skip: chains from base+5.
	skip := store.Batch{Epoch: base + 6, Muts: []store.Mut{{Op: store.OpAddEdge, U: 0, V: 21, P: 0.5}}}
	if _, err := eng.ApplyReplicated(skip); !errors.Is(err, repro.ErrReplicaGap) {
		t.Fatalf("skipping batch: %v, want ErrReplicaGap", err)
	}
	// Chains but cannot replay (duplicate edge): divergence, also a gap —
	// and all-or-nothing, the epoch must not advance.
	bad := store.Batch{Epoch: base + 2, Muts: []store.Mut{{Op: store.OpAddEdge, U: 0, V: 17, P: 0.5}}}
	if _, err := eng.ApplyReplicated(bad); !errors.Is(err, repro.ErrReplicaGap) {
		t.Fatalf("unreplayable batch: %v, want ErrReplicaGap", err)
	}
	if eng.Epoch() != base+1 {
		t.Fatalf("failed batch advanced the epoch to %d", eng.Epoch())
	}
	// Empty batch: no chain evidence, rejected.
	if _, err := eng.ApplyReplicated(store.Batch{Epoch: base + 1}); !errors.Is(err, repro.ErrReplicaGap) {
		t.Fatalf("empty batch: %v, want ErrReplicaGap", err)
	}
}

// TestTapSubscribe pins the subscription cut semantics: tail resume when
// the requested epoch is in the recoverable chain, full bootstrap
// otherwise, and slow subscribers are dropped rather than blocking
// AppendBatch.
func TestTapSubscribe(t *testing.T) {
	tap := NewTap(store.NewMem())
	snap := &store.Snapshot{Epoch: 10, N: 4, Edges: []store.Edge{{U: 0, V: 1, P: 0.5}}}
	if err := tap.Checkpoint(snap); err != nil {
		t.Fatal(err)
	}
	mkBatch := func(epoch uint64) store.Batch {
		return store.Batch{Epoch: epoch, Muts: []store.Mut{{Op: store.OpSetProb, U: 0, V: 1, P: 0.25}}}
	}
	for e := uint64(11); e <= 13; e++ {
		if err := tap.AppendBatch(mkBatch(e)); err != nil {
			t.Fatal(err)
		}
	}
	if tap.Epoch() != 13 {
		t.Fatalf("tap epoch %d, want 13", tap.Epoch())
	}

	// Resume from a WAL epoch: no snapshot, backlog is the suffix.
	sub, err := tap.Subscribe(11)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Snapshot != nil || len(sub.Backlog) != 2 || sub.Backlog[0].Epoch != 12 {
		t.Fatalf("resume sub: snapshot=%v backlog=%v", sub.Snapshot, sub.Backlog)
	}
	sub.Close()

	// Resume from the checkpoint epoch: full backlog, no snapshot.
	sub, err = tap.Subscribe(10)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Snapshot != nil || len(sub.Backlog) != 3 {
		t.Fatalf("checkpoint-epoch sub: snapshot=%v backlog=%v", sub.Snapshot, sub.Backlog)
	}
	sub.Close()

	// Unknown epoch (checkpointed away, or diverged): bootstrap.
	for _, from := range []uint64{0, 5, 99} {
		sub, err = tap.Subscribe(from)
		if err != nil {
			t.Fatal(err)
		}
		if sub.Snapshot == nil || sub.Snapshot.Epoch != 10 || len(sub.Backlog) != 3 {
			t.Fatalf("from=%d: snapshot=%v backlog=%d, want bootstrap", from, sub.Snapshot, len(sub.Backlog))
		}
		sub.Close()
	}

	// A subscriber that never drains is dropped once its buffer fills —
	// AppendBatch must not block.
	sub, err = tap.Subscribe(13)
	if err != nil {
		t.Fatal(err)
	}
	epoch := uint64(14)
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		for i := 0; i < subBuffer+2; i++ {
			if err := tap.AppendBatch(mkBatch(epoch)); err != nil {
				t.Error(err)
				return
			}
			epoch++
		}
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("AppendBatch blocked on a slow subscriber")
	}
	if tap.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", tap.Drops())
	}
	if _, ok := <-drain(sub.C); ok {
		// Drain to the close: the channel must end.
	}
	if tap.Subscribers() != 0 {
		t.Fatalf("dropped subscriber still registered: %d", tap.Subscribers())
	}

	// Closing the tap closes the inner store and is idempotent.
	if err := tap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tap.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tap.Subscribe(0); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("subscribe after close: %v, want ErrClosed", err)
	}
}

// drain consumes ch until it closes, returning the closed channel for the
// caller's final receive.
func drain(ch <-chan store.Batch) <-chan store.Batch {
	for range ch {
	}
	return ch
}

// TestServeFeedBootstrapStream: an end-to-end feed over HTTP delivers
// snapshot, backlog and live batches in order, and heartbeats advance the
// advertised primary epoch.
func TestServeFeedBootstrapStream(t *testing.T) {
	g := replTestGraph(t)
	p := newPrimary(t, g, repro.WithSampleSize(50), repro.WithSeed(5))
	ctx := context.Background()
	if _, err := p.primary.Apply(ctx, repro.AddEdge(0, 20, 0.5)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("%s/v2/replication/feed/ds?from=0", p.srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fr := NewFrameReader(resp.Body)
	frame, err := fr.Next()
	if err != nil || frame.Kind != FrameSnapshot {
		t.Fatalf("first frame: kind=%d err=%v, want snapshot", frame.Kind, err)
	}
	frame, err = fr.Next()
	if err != nil || frame.Kind != FrameBatch {
		t.Fatalf("second frame: kind=%d err=%v, want batch backlog", frame.Kind, err)
	}
	if frame.Batch.Epoch != p.primary.Epoch() {
		t.Fatalf("backlog batch epoch %d, want %d", frame.Batch.Epoch, p.primary.Epoch())
	}
	// Live batch after the initial heartbeat.
	if _, err := p.primary.Apply(ctx, repro.AddEdge(1, 21, 0.5)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("live batch never arrived")
		}
		frame, err = fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if frame.Kind == FrameBatch {
			if frame.Batch.Epoch != p.primary.Epoch() {
				t.Fatalf("live batch epoch %d, want %d", frame.Batch.Epoch, p.primary.Epoch())
			}
			break
		}
		if frame.Kind != FrameHeartbeat {
			t.Fatalf("unexpected frame kind %d", frame.Kind)
		}
	}
	// A bad from parameter is a 400, not a hung stream.
	resp2, err := http.Get(fmt.Sprintf("%s/v2/replication/feed/ds?from=nope", p.srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from: HTTP %d, want 400", resp2.StatusCode)
	}
}
