package replication

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/store"
)

func feedSnapshot() *store.Snapshot {
	return &store.Snapshot{
		Epoch: 42, Directed: false, N: 6,
		Edges: []store.Edge{{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.75}, {U: 3, V: 4, P: 0.125}},
	}
}

func feedBatches() []store.Batch {
	return []store.Batch{
		{Epoch: 44, Muts: []store.Mut{
			{Op: store.OpAddEdge, U: 2, V: 3, P: 0.5},
			{Op: store.OpSetProb, U: 0, V: 1, P: 0.25},
		}},
		{Epoch: 45, Muts: []store.Mut{{Op: store.OpRemoveEdge, U: 3, V: 4}}},
	}
}

// encodeFeed renders a canonical feed stream: snapshot, batches, heartbeat.
func encodeFeed(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, feedSnapshot()); err != nil {
		t.Fatal(err)
	}
	for _, b := range feedBatches() {
		if err := WriteBatch(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteHeartbeat(&buf, 45); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFrameRoundTrip: a written stream decodes to the exact frames, in
// order, ending in clean EOF.
func TestFrameRoundTrip(t *testing.T) {
	fr := NewFrameReader(bytes.NewReader(encodeFeed(t)))
	f, err := fr.Next()
	if err != nil || f.Kind != FrameSnapshot {
		t.Fatalf("frame 1: kind=%d err=%v", f.Kind, err)
	}
	if f.Snapshot.Epoch != 42 || len(f.Snapshot.Edges) != 3 || f.Snapshot.N != 6 {
		t.Fatalf("snapshot mangled: %+v", f.Snapshot)
	}
	for i, want := range feedBatches() {
		f, err = fr.Next()
		if err != nil || f.Kind != FrameBatch {
			t.Fatalf("batch frame %d: kind=%d err=%v", i, f.Kind, err)
		}
		if f.Batch.Epoch != want.Epoch || len(f.Batch.Muts) != len(want.Muts) {
			t.Fatalf("batch %d mangled: %+v want %+v", i, f.Batch, want)
		}
		if f.Batch.PrevEpoch() != want.PrevEpoch() {
			t.Fatalf("batch %d PrevEpoch %d want %d", i, f.Batch.PrevEpoch(), want.PrevEpoch())
		}
	}
	f, err = fr.Next()
	if err != nil || f.Kind != FrameHeartbeat || f.Epoch != 45 {
		t.Fatalf("heartbeat: %+v err=%v", f, err)
	}
	if _, err = fr.Next(); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
}

// TestFrameTornStream: every possible truncation of a valid stream decodes
// a valid prefix and then fails typed — io.EOF only at a frame boundary,
// io.ErrUnexpectedEOF mid-frame, never a panic or a misparsed frame.
func TestFrameTornStream(t *testing.T) {
	full := encodeFeed(t)
	// Frame boundaries for the boundary/mid-frame distinction.
	boundaries := map[int]bool{0: true, len(full): true}
	{
		fr := NewFrameReader(bytes.NewReader(full))
		off := 0
		rest := full
		for {
			f, err := fr.Next()
			if err != nil {
				break
			}
			_ = f
			// Recompute consumed length from the header of rest.
			plen := int(binary.LittleEndian.Uint32(rest[1:5]))
			off += frameHeaderLen + plen
			rest = full[off:]
			boundaries[off] = true
		}
	}
	for cut := 0; cut < len(full); cut++ {
		fr := NewFrameReader(bytes.NewReader(full[:cut]))
		var err error
		for err == nil {
			_, err = fr.Next()
		}
		if boundaries[cut] {
			if err != io.EOF {
				t.Fatalf("cut at boundary %d: %v, want io.EOF", cut, err)
			}
		} else if err != io.ErrUnexpectedEOF && !errors.Is(err, ErrBadFrame) {
			t.Fatalf("cut mid-frame at %d: %v, want ErrUnexpectedEOF or ErrBadFrame", cut, err)
		}
	}
}

// TestFrameCorruption: single-byte corruption anywhere in a batch frame is
// a typed rejection (the payload is the CRC-framed WAL record), and frame-
// level garbage (unknown kind, oversize length, trailing bytes, short
// heartbeat) is ErrBadFrame.
func TestFrameCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBatch(&buf, feedBatches()[0]); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for i := range frame {
		corrupt := append([]byte(nil), frame...)
		corrupt[i] ^= 0x01
		fr := NewFrameReader(bytes.NewReader(corrupt))
		for {
			_, err := fr.Next()
			if err == nil {
				// A flipped bit in the batch payload cannot decode: the
				// record is CRC-framed. A flip in the frame header either
				// changes the kind/length (typed error or torn read) or
				// shortens the stream. Nothing decodes cleanly.
				t.Fatalf("flip at byte %d: frame decoded cleanly", i)
			}
			if err == io.EOF || err == io.ErrUnexpectedEOF || errors.Is(err, ErrBadFrame) {
				break
			}
			t.Fatalf("flip at byte %d: untyped error %v", i, err)
		}
	}

	cases := map[string][]byte{
		"unknown kind":    {9, 0, 0, 0, 0},
		"oversize length": {byte(FrameBatch), 0xff, 0xff, 0xff, 0xff},
		"short heartbeat": append([]byte{byte(FrameHeartbeat), 4, 0, 0, 0}, 1, 2, 3, 4),
	}
	for name, stream := range cases {
		fr := NewFrameReader(bytes.NewReader(stream))
		if _, err := fr.Next(); !errors.Is(err, ErrBadFrame) && err != io.ErrUnexpectedEOF {
			t.Errorf("%s: %v, want ErrBadFrame", name, err)
		}
	}

	// A batch frame with trailing bytes after the record must be rejected:
	// accepting it would let an attacker smuggle a second, unframed record.
	rec := store.EncodeBatch(feedBatches()[0])
	padded := append(append([]byte(nil), rec...), 0xde, 0xad)
	var tr bytes.Buffer
	if err := writeFrame(&tr, FrameBatch, padded); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bytes.NewReader(tr.Bytes()))
	if _, err := fr.Next(); !errors.Is(err, ErrBadFrame) {
		t.Errorf("trailing bytes in batch frame: %v, want ErrBadFrame", err)
	}
}

// TestFrameReorderedDuplicated: the wire layer decodes reordered and
// duplicated batch frames (each is individually valid — ordering is not a
// transport property), and the chain validation at apply time is what
// rejects them. This pins the division of labor end to end with the real
// decoder in the loop.
func TestFrameReorderedDuplicated(t *testing.T) {
	batches := feedBatches()
	var buf bytes.Buffer
	// duplicate batch 0, then batch 1, then batch 0 again (reordered).
	for _, b := range []store.Batch{batches[0], batches[0], batches[1], batches[0]} {
		if err := WriteBatch(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
	var got []store.Batch
	for {
		f, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, f.Batch)
	}
	if len(got) != 4 {
		t.Fatalf("decoded %d frames, want 4", len(got))
	}
	// Chain check: starting at the snapshot epoch, only the in-order,
	// non-duplicated prefix chains; the duplicate and the reorder both
	// break PrevEpoch continuity exactly where apply would reject them.
	epoch := feedSnapshot().Epoch
	applied := 0
	for _, b := range got {
		if b.PrevEpoch() != epoch {
			break
		}
		epoch = b.Epoch
		applied++
	}
	if applied != 1 {
		t.Fatalf("chain accepted %d of the mangled batches, want exactly the first", applied)
	}
}

// FuzzFrameDecode: arbitrary bytes never panic the frame reader, and every
// decoded frame re-encodes to the exact bytes consumed (decode/encode
// bijectivity, inherited from the store codec's strictness).
func FuzzFrameDecode(f *testing.F) {
	f.Add(encodeFeed(f))
	f.Add([]byte{})
	f.Add([]byte{byte(FrameBatch), 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{9, 0, 0, 0, 0})
	hb := make([]byte, frameHeaderLen+heartbeatLen)
	hb[0] = byte(FrameHeartbeat)
	hb[1] = heartbeatLen
	f.Add(hb)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		off := 0
		for {
			frame, err := fr.Next()
			if err != nil {
				return
			}
			var buf bytes.Buffer
			switch frame.Kind {
			case FrameSnapshot:
				if err := WriteSnapshot(&buf, frame.Snapshot); err != nil {
					t.Fatal(err)
				}
			case FrameBatch:
				if err := WriteBatch(&buf, frame.Batch); err != nil {
					t.Fatal(err)
				}
			case FrameHeartbeat:
				if err := WriteHeartbeat(&buf, frame.Epoch); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(buf.Bytes(), data[off:off+buf.Len()]) {
				t.Fatalf("frame at %d does not re-encode to its input bytes", off)
			}
			off += buf.Len()
		}
	})
}
