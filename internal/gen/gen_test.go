package gen

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/ugraph"
)

func TestErdosRenyiEdgeCount(t *testing.T) {
	r := rng.New(1)
	g := ErdosRenyi(100, 300, false, r)
	if g.M() != 300 {
		t.Fatalf("M = %d, want 300", g.M())
	}
	gd := ErdosRenyi(50, 200, true, r)
	if gd.M() != 200 || !gd.Directed() {
		t.Fatalf("directed ER: M=%d directed=%v", gd.M(), gd.Directed())
	}
	// Request more edges than possible: clamps to the complete graph.
	tiny := ErdosRenyi(4, 100, false, r)
	if tiny.M() != 6 {
		t.Fatalf("clamped M = %d, want 6", tiny.M())
	}
}

func TestRegularDegrees(t *testing.T) {
	r := rng.New(2)
	g, err := Regular(20, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 20; v++ {
		if d := g.Degree(ugraph.NodeID(v)); d != 4 {
			t.Fatalf("degree(%d) = %d, want 4", v, d)
		}
	}
	// Odd k with even n uses the diameter matching.
	g5, err := Regular(20, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 20; v++ {
		if d := g5.Degree(ugraph.NodeID(v)); d != 5 {
			t.Fatalf("degree(%d) = %d, want 5", v, d)
		}
	}
	if _, err := Regular(10, 12, r); err == nil {
		t.Fatal("k >= n accepted")
	}
	if _, err := Regular(9, 5, r); err == nil {
		t.Fatal("odd k with odd n accepted")
	}
}

func TestSmallWorldShortensPaths(t *testing.T) {
	r := rng.New(3)
	regular, err := Regular(300, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := SmallWorld(300, 6, 0.3, r)
	if err != nil {
		t.Fatal(err)
	}
	lr := AvgShortestPath(regular, 40, rng.New(4))
	ls := AvgShortestPath(sw, 40, rng.New(4))
	if ls >= lr {
		t.Fatalf("small-world ASPL %v not below regular %v", ls, lr)
	}
	// Clustering stays well above an equally dense ER graph.
	er := ErdosRenyi(300, sw.M(), false, rng.New(5))
	if cs, ce := AvgClustering(sw, 0, nil), AvgClustering(er, 0, nil); cs <= ce {
		t.Fatalf("small-world clustering %v not above ER %v", cs, ce)
	}
}

func TestScaleFreeSkewedDegrees(t *testing.T) {
	r := rng.New(6)
	g, err := ScaleFree(500, 2, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	maxDeg, sum := 0, 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(ugraph.NodeID(v))
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sum) / float64(g.N())
	if float64(maxDeg) < 4*avg {
		t.Fatalf("max degree %d vs avg %.1f: not heavy tailed", maxDeg, avg)
	}
	if _, err := ScaleFree(10, 0, 3, r); err == nil {
		t.Fatal("attachLo=0 accepted")
	}
	if _, err := ScaleFree(2, 2, 3, r); err == nil {
		t.Fatal("n too small accepted")
	}
}

func TestGeometric(t *testing.T) {
	r := rng.New(7)
	g, pos := Geometric(80, 10, 10, 3, r)
	if len(pos) != 80 {
		t.Fatalf("positions = %d", len(pos))
	}
	for _, e := range g.Edges() {
		if Dist(pos[e.U], pos[e.V]) > 3 {
			t.Fatalf("edge longer than radius: %+v", e)
		}
	}
	if g.M() == 0 {
		t.Fatal("no edges in dense geometric graph")
	}
}

func TestAssignUniformRange(t *testing.T) {
	r := rng.New(8)
	g := ErdosRenyi(50, 150, false, r)
	AssignUniform(g, 0, 0.6, r)
	probs := EdgeProbabilities(g)
	for _, p := range probs {
		if p <= 0 || p > 0.6 {
			t.Fatalf("probability %v outside (0, 0.6]", p)
		}
	}
	if m := stats.Mean(probs); m < 0.2 || m > 0.4 {
		t.Fatalf("uniform mean %v implausible", m)
	}
}

func TestAssignNormalClamped(t *testing.T) {
	r := rng.New(9)
	g := ErdosRenyi(50, 150, false, r)
	AssignNormal(g, 0.5, 0.038, r)
	probs := EdgeProbabilities(g)
	m := stats.Mean(probs)
	if math.Abs(m-0.5) > 0.02 {
		t.Fatalf("normal mean %v, want ≈0.5", m)
	}
	for _, p := range probs {
		if p < 0.01 || p > 1 {
			t.Fatalf("probability %v escaped clamp", p)
		}
	}
}

func TestAssignExpCDF(t *testing.T) {
	r := rng.New(10)
	g := ErdosRenyi(100, 400, false, r)
	AssignExpCDF(g, 20, 3, r)
	probs := EdgeProbabilities(g)
	for _, p := range probs {
		if p <= 0 || p >= 1 {
			t.Fatalf("probability %v outside (0,1)", p)
		}
	}
	// 1 - e^{-t/20} with small t gives small probabilities (DBLP mean 0.11).
	if m := stats.Mean(probs); m < 0.04 || m > 0.3 {
		t.Fatalf("expCDF mean %v implausible", m)
	}
}

func TestAssignInverseDegree(t *testing.T) {
	g := ugraph.New(4, false)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(0, 2, 0.5)
	g.MustAddEdge(0, 3, 0.5)
	AssignInverseDegree(g)
	for eid := 0; eid < g.M(); eid++ {
		e := g.Endpoints(int32(eid))
		if math.Abs(e.P-1.0/3.0) > 1e-12 {
			t.Fatalf("edge %d probability %v, want 1/3 (deg(0)=3)", eid, e.P)
		}
	}
}

func TestAssignDistanceDecayMonotonic(t *testing.T) {
	r := rng.New(11)
	g, pos := Geometric(60, 10, 10, 4, r)
	AssignDistanceDecay(g, pos, 4, 0.8, 0.05, r)
	// On average, shorter edges must be more reliable than longer ones.
	var shortP, longP []float64
	for _, e := range g.Edges() {
		if Dist(pos[e.U], pos[e.V]) < 2 {
			shortP = append(shortP, e.P)
		} else {
			longP = append(longP, e.P)
		}
	}
	if len(shortP) == 0 || len(longP) == 0 {
		t.Skip("degenerate layout")
	}
	if stats.Mean(shortP) <= stats.Mean(longP) {
		t.Fatalf("short mean %v not above long mean %v", stats.Mean(shortP), stats.Mean(longP))
	}
}

func TestClusteringTriangle(t *testing.T) {
	g := ugraph.New(3, false)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.5)
	g.MustAddEdge(0, 2, 0.5)
	if c := AvgClustering(g, 0, nil); math.Abs(c-1) > 1e-12 {
		t.Fatalf("triangle clustering = %v, want 1", c)
	}
	path := ugraph.New(3, false)
	path.MustAddEdge(0, 1, 0.5)
	path.MustAddEdge(1, 2, 0.5)
	if c := AvgClustering(path, 0, nil); c != 0 {
		t.Fatalf("path clustering = %v, want 0", c)
	}
}

func TestAvgShortestPathLine(t *testing.T) {
	g := ugraph.New(3, false)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.5)
	// Pairs: (0,1)=1 (0,2)=2 (1,0)=1 (1,2)=1 (2,1)=1 (2,0)=2 → mean 8/6.
	if got := AvgShortestPath(g, 0, nil); math.Abs(got-8.0/6.0) > 1e-12 {
		t.Fatalf("ASPL = %v, want %v", got, 8.0/6.0)
	}
}
