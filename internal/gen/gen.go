// Package gen generates the synthetic uncertain graphs of §8.1: Erdős–Rényi
// random graphs, k-regular ring lattices, Watts–Strogatz small-world graphs
// and Barabási–Albert scale-free graphs, plus random geometric graphs (used
// for the Intel Lab stand-in) and the edge-probability models of the paper
// (uniform, normal, exponential-CDF over interaction counts, inverse
// degree).
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ugraph"
)

const placeholderProb = 0.5

// ErdosRenyi samples a G(n, m)-style uniform random graph with exactly m
// distinct edges (or as many as fit).
func ErdosRenyi(n, m int, directed bool, r *rand.Rand) *ugraph.Graph {
	g := ugraph.New(n, directed)
	maxEdges := n * (n - 1)
	if !directed {
		maxEdges /= 2
	}
	if m > maxEdges {
		m = maxEdges
	}
	for g.M() < m {
		u := ugraph.NodeID(r.Intn(n))
		v := ugraph.NodeID(r.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, placeholderProb)
	}
	return g
}

// Regular builds a k-regular undirected ring lattice: each node links to
// its k/2 nearest neighbours on each side; for odd k (and even n) a
// diameter matching i ↔ i+n/2 supplies the extra degree.
func Regular(n, k int, _ *rand.Rand) (*ugraph.Graph, error) {
	if k >= n {
		return nil, fmt.Errorf("gen: k=%d must be below n=%d", k, n)
	}
	if k%2 == 1 && n%2 == 1 {
		return nil, fmt.Errorf("gen: odd k=%d requires even n, got %d", k, n)
	}
	g := ugraph.New(n, false)
	for i := 0; i < n; i++ {
		for d := 1; d <= k/2; d++ {
			j := (i + d) % n
			if !g.HasEdge(ugraph.NodeID(i), ugraph.NodeID(j)) {
				g.MustAddEdge(ugraph.NodeID(i), ugraph.NodeID(j), placeholderProb)
			}
		}
	}
	if k%2 == 1 {
		for i := 0; i < n/2; i++ {
			j := i + n/2
			if !g.HasEdge(ugraph.NodeID(i), ugraph.NodeID(j)) {
				g.MustAddEdge(ugraph.NodeID(i), ugraph.NodeID(j), placeholderProb)
			}
		}
	}
	return g, nil
}

// SmallWorld builds a Watts–Strogatz graph: a k-regular ring lattice whose
// edges are rewired with probability beta to a uniform random endpoint.
func SmallWorld(n, k int, beta float64, r *rand.Rand) (*ugraph.Graph, error) {
	base, err := Regular(n, k, r)
	if err != nil {
		return nil, err
	}
	g := ugraph.New(n, false)
	for _, e := range base.Edges() {
		u, v := e.U, e.V
		if r.Float64() < beta {
			// Rewire the far endpoint; keep simple-graph invariants.
			for attempts := 0; attempts < 32; attempts++ {
				w := ugraph.NodeID(r.Intn(n))
				if w == u || g.HasEdge(u, w) {
					continue
				}
				v = w
				break
			}
		}
		if !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, placeholderProb)
		}
	}
	return g, nil
}

// ScaleFree builds a Barabási–Albert preferential-attachment graph. Each
// new node attaches attachLo or attachHi edges (alternating, to emulate the
// paper's modified generator that alternates m=2 and m=3) to existing nodes
// chosen proportionally to degree.
func ScaleFree(n, attachLo, attachHi int, r *rand.Rand) (*ugraph.Graph, error) {
	if attachLo < 1 || attachHi < attachLo {
		return nil, fmt.Errorf("gen: bad attachment range [%d,%d]", attachLo, attachHi)
	}
	seed := attachHi + 1
	if seed > n {
		return nil, fmt.Errorf("gen: n=%d too small for attachment %d", n, attachHi)
	}
	g := ugraph.New(n, false)
	// Repeated-node list: node v appears deg(v) times, so uniform draws
	// implement preferential attachment.
	var repeated []ugraph.NodeID
	// Seed clique over the first seed nodes.
	for i := 0; i < seed; i++ {
		for j := i + 1; j < seed; j++ {
			g.MustAddEdge(ugraph.NodeID(i), ugraph.NodeID(j), placeholderProb)
			repeated = append(repeated, ugraph.NodeID(i), ugraph.NodeID(j))
		}
	}
	for v := seed; v < n; v++ {
		attach := attachLo
		if (v-seed)%2 == 1 {
			attach = attachHi
		}
		added := 0
		for attempts := 0; attempts < 64 && added < attach; attempts++ {
			target := repeated[r.Intn(len(repeated))]
			if target == ugraph.NodeID(v) || g.HasEdge(ugraph.NodeID(v), target) {
				continue
			}
			g.MustAddEdge(ugraph.NodeID(v), target, placeholderProb)
			repeated = append(repeated, ugraph.NodeID(v), target)
			added++
		}
	}
	return g, nil
}

// Geometric builds a random geometric graph: n nodes placed uniformly in a
// width×height rectangle, connected (undirected) when within radius. It
// returns the node positions for distance-based probability models.
func Geometric(n int, width, height, radius float64, r *rand.Rand) (*ugraph.Graph, [][2]float64) {
	pos := make([][2]float64, n)
	for i := range pos {
		pos[i] = [2]float64{r.Float64() * width, r.Float64() * height}
	}
	g := ugraph.New(n, false)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if Dist(pos[i], pos[j]) <= radius {
				g.MustAddEdge(ugraph.NodeID(i), ugraph.NodeID(j), placeholderProb)
			}
		}
	}
	return g, pos
}

// Dist is the Euclidean distance between two positions.
func Dist(a, b [2]float64) float64 {
	dx, dy := a[0]-b[0], a[1]-b[1]
	return math.Sqrt(dx*dx + dy*dy)
}

// AssignUniform draws every edge probability uniformly from (lo, hi].
func AssignUniform(g *ugraph.Graph, lo, hi float64, r *rand.Rand) {
	for eid := 0; eid < g.M(); eid++ {
		p := lo + (hi-lo)*r.Float64()
		if p <= 0 {
			p = hi
		}
		setProb(g, int32(eid), p)
	}
}

// AssignNormal draws probabilities from N(mean, sd) clamped to (0.01, 1).
func AssignNormal(g *ugraph.Graph, mean, sd float64, r *rand.Rand) {
	for eid := 0; eid < g.M(); eid++ {
		setProb(g, int32(eid), ClampProb(mean+sd*r.NormFloat64()))
	}
}

// ClampProb restricts p to the usable range (0.01, 1).
func ClampProb(p float64) float64 {
	if p < 0.01 {
		return 0.01
	}
	if p > 1 {
		return 1
	}
	return p
}

// AssignExpCDF models the DBLP/Twitter probabilities of §8.1: each edge
// gets p = 1 − e^{−t/µ} where t is a synthetic interaction count drawn from
// a geometric distribution with the given mean (counts are ≥ 1, heavy
// tailed like collaboration counts).
func AssignExpCDF(g *ugraph.Graph, mu, meanCount float64, r *rand.Rand) {
	if meanCount < 1 {
		meanCount = 1
	}
	// Geometric with success probability q has mean 1/q.
	q := 1 / meanCount
	for eid := 0; eid < g.M(); eid++ {
		t := 1
		for r.Float64() > q && t < 1000 {
			t++
		}
		setProb(g, int32(eid), 1-math.Exp(-float64(t)/mu))
	}
}

// AssignInverseDegree models the LastFM probabilities: p(u,v) is the
// inverse of the degree of the node the edge goes out from (u).
func AssignInverseDegree(g *ugraph.Graph) {
	for eid := 0; eid < g.M(); eid++ {
		e := g.Endpoints(int32(eid))
		d := g.Degree(e.U)
		if d < 1 {
			d = 1
		}
		setProb(g, int32(eid), 1/float64(d))
	}
}

// AssignDistanceDecay models sensor-network link quality: probability decays
// linearly from pNear at distance 0 to pFar at radius, with multiplicative
// noise. Used by the Intel Lab stand-in.
func AssignDistanceDecay(g *ugraph.Graph, pos [][2]float64, radius, pNear, pFar float64, r *rand.Rand) {
	for eid := 0; eid < g.M(); eid++ {
		e := g.Endpoints(int32(eid))
		frac := Dist(pos[e.U], pos[e.V]) / radius
		if frac > 1 {
			frac = 1
		}
		base := pNear + (pFar-pNear)*frac
		noise := 0.8 + 0.4*r.Float64()
		setProb(g, int32(eid), ClampProb(base*noise))
	}
}

func setProb(g *ugraph.Graph, eid int32, p float64) {
	if err := g.SetProb(eid, p); err != nil {
		panic(err) // generators only produce valid probabilities
	}
}
