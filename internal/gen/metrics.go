package gen

import (
	"math/rand"

	"repro/internal/ugraph"
)

// AvgClustering returns the average local clustering coefficient over a
// node sample (all nodes when sample <= 0), treating the topology as
// undirected. Used to validate generated datasets against Table 8.
func AvgClustering(g *ugraph.Graph, sample int, r *rand.Rand) float64 {
	n := g.N()
	idx := nodeSample(n, sample, r)
	total, counted := 0.0, 0
	neighbors := make(map[ugraph.NodeID]bool)
	for _, u := range idx {
		clear(neighbors)
		for _, a := range g.Out(u) {
			neighbors[a.To] = true
		}
		for _, a := range g.In(u) {
			neighbors[a.To] = true
		}
		delete(neighbors, u)
		d := len(neighbors)
		if d < 2 {
			continue
		}
		links := 0
		for v := range neighbors {
			for _, a := range g.Out(v) {
				if a.To != u && neighbors[a.To] {
					links++
				}
			}
		}
		if !g.Directed() {
			// Each triangle edge was seen from both endpoints.
			links /= 2
		}
		total += 2 * float64(links) / float64(d*(d-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// AvgShortestPath estimates the mean finite shortest-path hop length over a
// sample of BFS sources (all nodes when sample <= 0).
func AvgShortestPath(g *ugraph.Graph, sample int, r *rand.Rand) float64 {
	idx := nodeSample(g.N(), sample, r)
	total, pairs := 0.0, 0
	for _, u := range idx {
		dist := g.HopDistances(u, -1)
		for v, d := range dist {
			if d > 0 && ugraph.NodeID(v) != u {
				total += float64(d)
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return total / float64(pairs)
}

// EdgeProbabilities returns all edge probabilities (for summary stats).
func EdgeProbabilities(g *ugraph.Graph) []float64 {
	out := make([]float64, g.M())
	for eid := range out {
		out[eid] = g.Prob(int32(eid))
	}
	return out
}

func nodeSample(n, sample int, r *rand.Rand) []ugraph.NodeID {
	if sample <= 0 || sample >= n {
		out := make([]ugraph.NodeID, n)
		for i := range out {
			out[i] = ugraph.NodeID(i)
		}
		return out
	}
	out := make([]ugraph.NodeID, sample)
	if r == nil {
		step := n / sample
		for i := range out {
			out[i] = ugraph.NodeID(i * step)
		}
		return out
	}
	perm := r.Perm(n)
	for i := range out {
		out[i] = ugraph.NodeID(perm[i])
	}
	return out
}
