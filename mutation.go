package repro

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/store"
	"repro/internal/ugraph"
)

// ErrBadMutation marks a mutation batch the engine rejected: adding an
// edge that already exists, touching a missing edge, out-of-range
// endpoints or probabilities outside [0, 1]. The batch is atomic — on any
// bad mutation nothing is applied and the epoch does not advance.
var ErrBadMutation = errors.New("invalid mutation")

// ErrClosed reports an operation against a closed engine (one removed
// from its Catalog, or Close()d directly). Submissions and mutations are
// rejected; queries already in flight finish on their pinned snapshots.
var ErrClosed = errors.New("engine closed")

// MutationOp names one graph mutation kind.
type MutationOp string

// The mutation kinds accepted by Engine.Apply.
const (
	// MutAddEdge inserts edge (U, V) with probability P.
	MutAddEdge MutationOp = "add-edge"
	// MutSetProb re-estimates the existence probability of edge (U, V) to P.
	MutSetProb MutationOp = "set-prob"
	// MutRemoveEdge deletes edge (U, V).
	MutRemoveEdge MutationOp = "remove-edge"
)

// Mutation is one edge-level change to an engine's graph; batches of them
// are committed atomically by Engine.Apply. Construct with AddEdge,
// SetProb and RemoveEdge.
type Mutation struct {
	// Op selects the mutation kind.
	Op MutationOp
	// U and V are the edge endpoints (orientation ignored on undirected
	// graphs).
	U, V NodeID
	// P is the edge probability for add-edge and set-prob.
	P float64
}

// AddEdge is the mutation inserting edge (u, v) with probability p.
func AddEdge(u, v NodeID, p float64) Mutation {
	return Mutation{Op: MutAddEdge, U: u, V: v, P: p}
}

// SetProb is the mutation re-estimating edge (u, v)'s probability to p.
func SetProb(u, v NodeID, p float64) Mutation {
	return Mutation{Op: MutSetProb, U: u, V: v, P: p}
}

// RemoveEdge is the mutation deleting edge (u, v).
func RemoveEdge(u, v NodeID) Mutation {
	return Mutation{Op: MutRemoveEdge, U: u, V: v}
}

// Apply atomically commits a batch of mutations and returns the new graph
// epoch. The next epoch is built aside and rotated in with one pointer
// swap, so queries and jobs that already pinned the previous snapshot keep
// running on it unperturbed and return results bit-identical to a
// never-mutated engine. Queries canonicalized after Apply returns see the
// new epoch: their fingerprints change (the epoch is part of Query.Key),
// so the result cache self-invalidates — stale-epoch entries can no longer
// be hit and are evicted lazily.
//
// The batch is all-or-nothing: the first invalid mutation (duplicate add,
// missing edge, bad probability — see ErrBadMutation) or a fired ctx
// aborts the whole batch with the epoch unchanged. Mutations are applied
// in order, so a batch may remove an edge it just added. Concurrent
// Applies serialize.
//
// Cost: the batch commits as a persistent delta epoch layered over the
// previous CSR — shared base arrays plus materialized rows for only the
// touched nodes — so a commit is O(batch · degree of the touched nodes),
// independent of graph size, for adds, re-probes AND removals. Layers
// stack; a background compactor folds the chain back into a flat CSR when
// it reaches the configured depth or delta-arc fraction (see
// WithCompactionPolicy and Engine.Compact), amortizing the O(N + M)
// rebuild over many commits. Reads on a layered epoch are bit-identical to
// the flat rebuild (the differential suites pin this); WithFlatCommits
// restores the legacy clone+freeze commit for oracle use.
func (e *Engine) Apply(ctx context.Context, muts ...Mutation) (uint64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	if e.closed.Load() {
		return 0, fmt.Errorf("repro: Apply: %w", ErrClosed)
	}
	cur := e.snap.Load()
	if len(muts) == 0 {
		return cur.csr.Epoch(), nil
	}
	var next *engineSnapshot
	if e.flatApply {
		g := cur.graph().Clone()
		if i, err := applyMutationsTo(ctx, g, muts); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return 0, fmt.Errorf("repro: Apply interrupted at mutation %d/%d: %w", i, len(muts), cerr)
			}
			m := muts[i]
			return 0, fmt.Errorf("repro: Apply: mutation %d (%s %d-%d): %v: %w",
				i, m.Op, m.U, m.V, err, ErrBadMutation)
		}
		next = newFlatSnapshot(g)
	} else {
		if cerr := ctx.Err(); cerr != nil {
			return 0, fmt.Errorf("repro: Apply interrupted at mutation %d/%d: %w", 0, len(muts), cerr)
		}
		snap, i, err := deltaSnapshot(cur, muts)
		if err != nil {
			m := muts[i]
			return 0, fmt.Errorf("repro: Apply: mutation %d (%s %d-%d): %v: %w",
				i, m.Op, m.U, m.V, err, ErrBadMutation)
		}
		next = snap
	}
	// Durability barrier: the validated batch goes to the WAL — and is
	// fsynced — before the snapshot rotates. If the append fails the epoch
	// does not advance and the caller may retry; recovery can therefore
	// never see an epoch the log does not carry, and every epoch Apply
	// acknowledged survives a crash.
	var appended store.Batch
	if e.store != nil {
		b, err := e.appendToWAL(next.csr.Epoch(), muts)
		if err != nil {
			return 0, fmt.Errorf("repro: Apply: durable append: %w", err)
		}
		appended = b
	}
	// Rotate the cache epoch BEFORE publishing the snapshot: a query that
	// canonicalizes against the new snapshot and races its result into the
	// cache must find the cache already on the new epoch, or the lazy trim
	// would reclaim the fresh entry as stale. The reverse window — an
	// old-epoch result put after the epoch rotates — is trimmed as stale,
	// which is exactly what it is about to become.
	if e.cache != nil {
		e.cache.setEpoch(next.csr.Epoch())
	}
	e.snap.Store(next)
	e.applies.Add(1)
	e.mutationsApplied.Add(uint64(len(muts)))
	if len(next.pending) != 0 {
		e.deltaCommits.Add(1)
	}
	if e.store != nil {
		e.pendingBatches++
		e.pendingBytes += int64(store.EncodedBatchSize(appended))
		if e.pendingBatches >= e.ckptBatches || e.pendingBytes >= e.ckptBytes {
			// Best-effort: the batch is already durable in the WAL, so a
			// failed checkpoint does not fail the Apply — it shows up in
			// Stats.CheckpointErrors and the next Apply retries.
			_ = e.checkpointLocked()
		}
	}
	e.maybeCompact(e.snap.Load())
	e.maybeWarmCache(cur.csr.Epoch())
	return next.csr.Epoch(), nil
}

// deltaSnapshot builds the snapshot committing muts over cur as one more
// delta layer — the O(batch) commit path shared by Apply and
// ApplyReplicated. On failure it returns the offending mutation's index
// and the underlying cause; cur is untouched either way.
func deltaSnapshot(cur *engineSnapshot, muts []Mutation) (*engineSnapshot, int, error) {
	edits := make([]ugraph.DeltaEdit, len(muts))
	for i, m := range muts {
		ed, err := deltaEditOf(m)
		if err != nil {
			return nil, i, err
		}
		edits[i] = ed
	}
	dcsr, err := cur.csr.Delta(edits)
	if err != nil {
		var de *ugraph.DeltaError
		if errors.As(err, &de) {
			return nil, de.Index, de.Err
		}
		return nil, 0, err
	}
	pending := make([]Mutation, 0, len(cur.pending)+len(muts))
	pending = append(append(pending, cur.pending...), muts...)
	return &engineSnapshot{csr: dcsr, base: cur.base, pending: pending}, 0, nil
}

// deltaEditOf converts one Mutation to its ugraph delta form.
func deltaEditOf(m Mutation) (ugraph.DeltaEdit, error) {
	switch m.Op {
	case MutAddEdge:
		return ugraph.DeltaEdit{Op: ugraph.DeltaAdd, U: m.U, V: m.V, P: m.P}, nil
	case MutSetProb:
		return ugraph.DeltaEdit{Op: ugraph.DeltaSetProb, U: m.U, V: m.V, P: m.P}, nil
	case MutRemoveEdge:
		return ugraph.DeltaEdit{Op: ugraph.DeltaRemove, U: m.U, V: m.V}, nil
	default:
		return ugraph.DeltaEdit{}, fmt.Errorf("unknown op %q", m.Op)
	}
}

// applyMutationsTo executes a mutation batch in order against g — the
// single path Apply, ApplyReplicated and durable WAL replay
// (RecoverEngine) go through — batching every run of consecutive
// remove-edge mutations into one Graph.RemoveEdges compaction pass, so k
// removals in a batch cost O(N + M + k) instead of O(k·(N + M)). The
// resulting graph (edge IDs, arc order, version counter) is bit-identical
// to one-at-a-time application, so batches written by one node replay
// identically everywhere. On error the returned index names the offending
// mutation (the first of its run, for batched removals); the graph may be
// partially mutated, which is fine because every caller mutates a clone
// and discards it on error. ctx may be nil (replay paths).
func applyMutationsTo(ctx context.Context, g *Graph, muts []Mutation) (int, error) {
	for i := 0; i < len(muts); {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return i, err
			}
		}
		m := muts[i]
		if m.Op != MutRemoveEdge {
			if err := applyMutationTo(g, m); err != nil {
				return i, err
			}
			i++
			continue
		}
		j := i + 1
		for j < len(muts) && muts[j].Op == MutRemoveEdge {
			j++
		}
		pairs := make([][2]NodeID, j-i)
		for k, r := range muts[i:j] {
			pairs[k] = [2]NodeID{r.U, r.V}
		}
		if err := g.RemoveEdges(pairs); err != nil {
			return i, err
		}
		i = j
	}
	return len(muts), nil
}

// applyMutationTo executes one mutation against g; applyMutationsTo is
// the batch path every committer routes through.
func applyMutationTo(g *Graph, m Mutation) error {
	switch m.Op {
	case MutAddEdge:
		_, err := g.AddEdge(m.U, m.V, m.P)
		return err
	case MutSetProb:
		if eid, ok := g.EdgeID(m.U, m.V); ok {
			return g.SetProb(eid, m.P)
		}
		return fmt.Errorf("no edge (%d,%d)", m.U, m.V)
	case MutRemoveEdge:
		return g.RemoveEdge(m.U, m.V)
	default:
		return fmt.Errorf("unknown op %q", m.Op)
	}
}

// Close retires the engine: new Submits and Applies fail with ErrClosed
// and every non-terminal job is cancelled (cooperatively — they finish as
// JobCancelled within one sample block). Synchronous queries already in
// flight complete on their pinned snapshots. Close is idempotent; a
// Catalog calls it when a dataset is removed.
func (e *Engine) Close() {
	e.applyMu.Lock()
	already := e.closed.Swap(true)
	if !already && e.store != nil {
		// The WAL is fsynced on every Apply, so closing loses nothing;
		// recovery replays whatever the last checkpoint missed.
		_ = e.store.Close()
	}
	e.applyMu.Unlock()
	if already {
		return
	}
	e.liveMu.Lock()
	jobs := make([]*Job, 0, len(e.liveJobs))
	for j := range e.liveJobs {
		jobs = append(jobs, j)
	}
	e.liveMu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
}

// Closed reports whether the engine has been Close()d.
func (e *Engine) Closed() bool { return e.closed.Load() }
