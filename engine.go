package repro

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sampling"
	"repro/internal/store"
)

// Engine is the context-first entry point for serving reliability
// maximization and estimation queries over one uncertain graph. Where the
// legacy free functions re-freeze state and rebuild sampler pools on every
// call, an Engine is built once per dataset and pins:
//
//   - a private clone of the graph (callers may keep mutating theirs) and
//     its frozen CSR snapshot, shared read-only by all queries, and
//   - a warm pool of per-worker serial samplers (when Workers != 0),
//     leased per request so repeated queries reuse scratch memory.
//
// The graph is mutable behind versioned snapshots: Apply commits a batch
// of mutations by building the next frozen epoch and rotating it in
// atomically. Every query pins the snapshot current at canonicalization
// (for jobs: at Submit), so in-flight work is never perturbed by a
// concurrent Apply — it completes on the epoch it started on, bit-identical
// to an engine that was never mutated. See Apply and Mutation.
//
// Every query method takes a context.Context. Cancellation and deadlines
// are cooperative and cheap: the samplers poll ctx between sample blocks
// (never per edge) and the greedy solvers stop at round boundaries, so a
// cancelled query returns within one sample block with an error wrapping
// context.Canceled / context.DeadlineExceeded and — where meaningful — the
// partial result built so far. Uncancelled queries consume exactly the
// randomness the legacy path consumes: for the same Options, Engine.Solve
// and the free Solve return bit-identical Solutions.
//
// An Engine is safe for concurrent use: queries never mutate the snapshot
// they pinned, and each request derives its own deterministic sampler
// state, so a query's result depends only on its request and the epoch it
// ran on. Identical requests on the same epoch always produce identical
// answers — the stateless semantics a serving tier wants (cmd/relmaxd
// builds on this through a Catalog of engines).
type Engine struct {
	// snap is the current epoch: an immutable snapshot (flat CSR, or a
	// delta CSR over the last flat base) swapped wholesale by Apply and
	// the compactor. Readers load it once per query and never see a torn
	// state; old snapshots stay valid for the queries that pinned them.
	snap atomic.Pointer[engineSnapshot]
	// applyMu serializes Apply (and Close's terminal transition): clones
	// build off the snapshot they loaded, so two concurrent Applies would
	// otherwise lose one batch.
	applyMu sync.Mutex

	opt     Options // defaults template; Sampler/Z/Seed resolved at build
	method  Method
	scratch *sampling.SharedScratch

	// id numbers the engine process-wide; job IDs embed it so they stay
	// unique when one server hosts several engines.
	id int64

	// cache is the fingerprint-keyed LRU over successful Results; nil
	// unless WithResultCache configured one.
	cache *resultCache

	// Bounded job queue (Submit): at most maxConcurrent jobs execute at
	// once, at most queueDepth wait for a slot, the rest are rejected with
	// ErrOverloaded.
	maxConcurrent int
	queueDepth    int
	queueDepthSet bool
	jobSem        chan struct{}
	jobSeq        atomic.Int64

	// closed rejects new Submits/Applies after Close; liveJobs tracks
	// non-terminal jobs so Close can cancel them.
	closed   atomic.Bool
	liveMu   sync.Mutex
	liveJobs map[*Job]struct{}

	queuedJobs, runningJobs, inFlightJobs                                 atomic.Int64
	submittedJobs, completedJobs, cancelledJobs, failedJobs, rejectedJobs atomic.Uint64
	applies, mutationsApplied                                             atomic.Uint64
	replicatedApplies, replicatedMutations                                atomic.Uint64

	// Delta-epoch commit machinery (see mutation.go and compact.go):
	// flatApply forces the legacy clone+freeze commit path; the compact*
	// fields are the fold-the-chain thresholds; compacting single-flights
	// the background compactor. warmN is the cache-warming budget per epoch
	// rotation (0 = disabled), warming its single-flight guard.
	flatApply    bool
	compactDepth int
	compactFrac  float64
	compacting   atomic.Bool
	warmN        int
	warming      atomic.Bool

	deltaCommits, compactions, cacheWarmed atomic.Uint64

	// Anytime-estimate accounting: how many adaptive estimates ran, how
	// many samples they actually drew, and how many their MaxZ budgets
	// would have drawn but the early stop saved.
	anytimeEstimates, anytimeSamplesUsed, anytimeSamplesSaved atomic.Uint64

	// Durable storage; nil for in-memory engines. store and the policy
	// fields are fixed at construction; the pending counters are guarded by
	// applyMu. See durability.go.
	store          store.Store
	storageDir     string
	recoveredStore bool
	ckptBatches    int
	ckptBytes      int64
	pendingBatches int
	pendingBytes   int64

	checkpoints, checkpointErrors atomic.Uint64
}

// engineSnapshot is one frozen graph epoch. csr is what queries read: a
// flat CSR, or a delta CSR layering the batches in pending over the flat
// base (see ugraph.CSR.Delta). base is the mutable-Graph form of the most
// recent FLAT epoch and pending the mutations committed as delta layers
// since — replaying pending onto a clone of base reproduces the epoch
// exactly, which is what graph() does for the solver paths that need a
// *Graph. Everything is immutable once the snapshot is published; mat is
// the lazily-materialized replay, built at most once under matOnce.
type engineSnapshot struct {
	csr     *CSR
	base    *Graph
	pending []Mutation

	matOnce sync.Once
	mat     *Graph
}

// newFlatSnapshot pins a flat epoch: g IS the epoch's graph and freezes to
// its CSR. g must not be mutated afterwards.
func newFlatSnapshot(g *Graph) *engineSnapshot {
	return &engineSnapshot{csr: g.Freeze(), base: g}
}

// graph returns the mutable-Graph form of the snapshot's epoch. Flat
// snapshots return their base directly; delta snapshots materialize a full
// rebuild (clone base, replay pending) lazily and at most once — the
// solver paths that need a *Graph pay the O(N+M) rebuild only when they
// actually run on a layered epoch, and compaction reuses the same
// materialization. The replay cannot fail: pending was validated
// edit-by-edit when its delta layers committed.
func (s *engineSnapshot) graph() *Graph {
	if len(s.pending) == 0 {
		return s.base
	}
	s.matOnce.Do(func() {
		g := s.base.Clone()
		if i, err := applyMutationsTo(nil, g, s.pending); err != nil {
			panic(fmt.Sprintf("repro: delta replay diverged at mutation %d: %v", i, err))
		}
		s.mat = g
	})
	return s.mat
}

// EngineOption configures NewEngine.
type EngineOption func(*Engine)

// WithSamplerKind selects the reliability estimator: "mc", "rss" (default)
// or "lazy".
func WithSamplerKind(kind string) EngineOption {
	return func(e *Engine) { e.opt.Sampler = kind }
}

// WithSampleSize sets the default sample budget Z per estimate.
func WithSampleSize(z int) EngineOption {
	return func(e *Engine) { e.opt.Z = z }
}

// WithSeed sets the engine's base seed. Every request derives its
// randomness deterministically from the seed in effect (engine default or
// per-request override), so a fixed seed makes the engine's answers
// reproducible across restarts.
func WithSeed(seed int64) EngineOption {
	return func(e *Engine) { e.opt.Seed = seed }
}

// WithWorkers sizes the sampling worker pool: 0 keeps the serial samplers
// (the legacy default), N >= 1 uses a deterministic parallel pool with N
// workers, negative values use GOMAXPROCS.
func WithWorkers(n int) EngineOption {
	return func(e *Engine) { e.opt.Workers = n }
}

// WithDefaultMethod sets the solver used when a Request leaves Method
// empty (default MethodBE).
func WithDefaultMethod(m Method) EngineOption {
	return func(e *Engine) { e.method = m }
}

// WithSolverDefaults replaces the engine's whole Options template (budget
// K, ζ, elimination width R, path count L, hop bound H, sampler config,
// workers, ...). Later options still override individual fields.
func WithSolverDefaults(opt Options) EngineOption {
	return func(e *Engine) { e.opt = opt }
}

// WithResultCache enables the fingerprint-keyed LRU result cache with room
// for n successful query results. Repeated identical queries (same
// canonical fingerprint — see Query.Key) then return the cached,
// bit-identical Result without recomputing; hits are visible in job
// statuses and Stats. n <= 0 (the default) disables caching.
func WithResultCache(n int) EngineOption {
	return func(e *Engine) {
		if n > 0 {
			e.cache = newResultCache(n)
		} else {
			e.cache = nil
		}
	}
}

// WithMaxConcurrent bounds how many submitted jobs execute simultaneously
// (the worker-slot count of the job queue). n <= 0 selects GOMAXPROCS.
// Synchronous Engine calls (Solve, Run, ...) are not throttled — only
// jobs; a serving tier routes everything through Submit to get one global
// bound.
func WithMaxConcurrent(n int) EngineOption {
	return func(e *Engine) { e.maxConcurrent = n }
}

// WithQueueDepth bounds how many submitted jobs may wait beyond the
// running ones: total admission capacity is maxConcurrent + queueDepth
// jobs in flight, and submissions beyond it fail fast with ErrOverloaded —
// the load-shedding primitive. n == 0 disables queueing entirely (only
// the running slots admit — strict shedding); n < 0 selects the default
// of 64.
func WithQueueDepth(n int) EngineOption {
	return func(e *Engine) { e.queueDepth, e.queueDepthSet = n, true }
}

// NewEngine builds a query engine over g: the graph is cloned and frozen
// once, the sampler configuration validated, and (for Workers != 0) the
// shared sampler pool created. On error the returned engine is nil.
func NewEngine(g *Graph, opts ...EngineOption) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("repro: NewEngine: nil graph: %w", ErrBadQuery)
	}
	e := &Engine{method: MethodBE}
	for _, o := range opts {
		o(e)
	}
	// Resolve the sampler-facing defaults now (mirroring the solver
	// defaults) so Estimate and EstimateMany see the same configuration a
	// Solve would.
	if e.opt.Sampler == "" {
		e.opt.Sampler = "rss"
	}
	if e.opt.Z <= 0 {
		e.opt.Z = 500
	}
	if e.opt.Seed == 0 {
		e.opt.Seed = 1
	}
	scratch, err := sampling.NewSharedScratch(e.opt.Sampler)
	if err != nil {
		return nil, fmt.Errorf("repro: NewEngine: sampler %q (want mc, rss, lazy or mcvec): %w", e.opt.Sampler, ErrUnknownSampler)
	}
	e.scratch = scratch
	if e.maxConcurrent <= 0 {
		e.maxConcurrent = runtime.GOMAXPROCS(0)
	}
	if !e.queueDepthSet || e.queueDepth < 0 {
		e.queueDepth = 64
	}
	e.jobSem = make(chan struct{}, e.maxConcurrent)
	e.id = engineSeq.Add(1)
	e.liveJobs = make(map[*Job]struct{})
	if e.compactDepth <= 0 {
		e.compactDepth = defaultCompactDepth
	}
	if e.compactFrac <= 0 {
		e.compactFrac = defaultCompactFraction
	}
	gc := g.Clone()
	e.snap.Store(newFlatSnapshot(gc))
	if e.cache != nil {
		e.cache.setEpoch(gc.Version())
	}
	if err := e.initStorage(gc); err != nil {
		if e.store != nil {
			e.store.Close()
		}
		return nil, fmt.Errorf("repro: NewEngine: %w", err)
	}
	return e, nil
}

// Snapshot returns the engine's current immutable CSR snapshot; it is safe
// for unrestricted concurrent reads and never changes once returned. Apply
// rotates the engine to a new snapshot — callers that must correlate
// several reads use one Snapshot value, not repeated calls.
func (e *Engine) Snapshot() *CSR { return e.snap.Load().csr }

// Epoch returns the engine's current graph epoch: the version stamp of the
// snapshot queries pin. It changes exactly when Apply commits a batch.
func (e *Engine) Epoch() uint64 { return e.snap.Load().csr.Epoch() }

// options resolves the effective Options for one request: nil uses the
// engine defaults; a non-nil override is taken as-is except that zero
// Sampler/Z/Seed/Workers inherit the engine configuration (so overriding
// K or Zeta does not silently change the estimator). The engine's warm
// sampler pool is attached whenever the parallel path will run with a
// matching estimator kind.
func (e *Engine) options(req *Options) Options {
	opt := e.opt
	if req != nil {
		opt = *req
		if opt.Sampler == "" {
			opt.Sampler = e.opt.Sampler
		}
		if opt.Z <= 0 {
			opt.Z = e.opt.Z
		}
		if opt.Seed == 0 {
			opt.Seed = e.opt.Seed
		}
		if opt.Workers == 0 {
			opt.Workers = e.opt.Workers
		}
	}
	if opt.Workers != 0 && opt.Sampler == e.scratch.Kind() {
		opt.Scratch = e.scratch
	} else {
		opt.Scratch = nil
	}
	return opt
}

// Request is one single-source-target Problem 1 query served by
// Engine.Solve.
type Request struct {
	// S and T are the query endpoints.
	S, T NodeID
	// Method selects the solver; empty uses the engine default.
	Method Method
	// Options overrides the engine's solver defaults for this request;
	// nil uses them unchanged. Zero Sampler/Z/Seed/Workers fields inherit
	// the engine configuration.
	Options *Options
	// Progress, when non-nil, receives per-round solver progress
	// (candidates eliminated, paths extracted, batches evaluated). It
	// runs inline on the solving goroutine.
	Progress ProgressFunc
}

// MultiRequest is one multiple-source-target Problem 4 query served by
// Engine.SolveMulti.
type MultiRequest struct {
	Sources, Targets []NodeID
	// Aggregate selects the objective; empty uses AggAvg.
	Aggregate Aggregate
	// Method selects the solver; empty uses the engine default.
	// Supported: MethodBE, MethodHillClimbing, MethodEigen.
	Method   Method
	Options  *Options
	Progress ProgressFunc
}

// BudgetRequest is one total-probability-budget query (the §9 extension)
// served by Engine.SolveTotalBudget.
type BudgetRequest struct {
	S, T NodeID
	// Budget is the total probability mass to allocate across new edges.
	Budget   float64
	Options  *Options
	Progress ProgressFunc
}

// Solve answers a Problem 1 query under ctx — a thin wrapper building a
// QuerySolve Query and dispatching through Run. On cancellation or
// deadline expiry it returns the partial Solution built so far (chosen
// edges, elimination stats; no held-out evaluation) and an error wrapping
// ctx.Err(); on success the Solution is bit-identical to the legacy free
// Solve at the same effective Options.
func (e *Engine) Solve(ctx context.Context, req Request) (Solution, error) {
	res, err := e.Run(ctx, Query{
		Kind: QuerySolve, S: req.S, T: req.T,
		Method: req.Method, Options: req.Options, Progress: req.Progress,
	})
	return res.Solution, err
}

// SolveMulti answers a Problem 4 query under ctx via the QueryMulti
// dispatch; see Solve for the cancellation contract.
func (e *Engine) SolveMulti(ctx context.Context, req MultiRequest) (MultiSolution, error) {
	res, err := e.Run(ctx, Query{
		Kind: QueryMulti, Sources: req.Sources, Targets: req.Targets,
		Aggregate: req.Aggregate, Method: req.Method,
		Options: req.Options, Progress: req.Progress,
	})
	return res.Multi, err
}

// SolveTotalBudget answers a §9 total-budget query under ctx via the
// QueryTotalBudget dispatch; see Solve for the cancellation contract.
func (e *Engine) SolveTotalBudget(ctx context.Context, req BudgetRequest) (TotalBudgetSolution, error) {
	res, err := e.Run(ctx, Query{
		Kind: QueryTotalBudget, S: req.S, T: req.T, Budget: req.Budget,
		Options: req.Options, Progress: req.Progress,
	})
	return res.TotalBudget, err
}

func (s *engineSnapshot) checkNode(v NodeID) error {
	if v < 0 || int(v) >= s.csr.N() {
		return fmt.Errorf("repro: node %d out of range [0,%d): %w", v, s.csr.N(), ErrBadQuery)
	}
	return nil
}

// Estimate returns the s-t reliability on the pinned snapshot under ctx
// via the QueryEstimate dispatch. Cancellation aborts within one sample
// block and returns an error wrapping ctx.Err().
func (e *Engine) Estimate(ctx context.Context, s, t NodeID) (float64, error) {
	res, err := e.Run(ctx, Query{Kind: QueryEstimate, S: s, T: t})
	return res.Reliability, err
}

// EstimateMany returns the reliability of every (S, T) query in one
// batched, deterministic call via the QueryEstimateMany dispatch. With
// Workers != 0 the (query, shard) product fans out over the worker pool;
// with Workers == 0 each query keeps one undivided full-budget serial
// stream (keyed on its index) and the queries fan out across the warm
// pool — bit-identical at any scheduling. On cancellation it returns an
// error wrapping ctx.Err() and no results (out-of-order execution leaves
// no meaningful completed prefix).
func (e *Engine) EstimateMany(ctx context.Context, queries []PairQuery) ([]float64, error) {
	res, err := e.Run(ctx, Query{Kind: QueryEstimateMany, Pairs: queries})
	return res.Reliabilities, err
}
