package repro

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/sampling"
)

// Engine is the context-first entry point for serving reliability
// maximization and estimation queries over one uncertain graph. Where the
// legacy free functions re-freeze state and rebuild sampler pools on every
// call, an Engine is built once per dataset and pins:
//
//   - a private clone of the graph (callers may keep mutating theirs) and
//     its frozen CSR snapshot, shared read-only by all queries, and
//   - a warm pool of per-worker serial samplers (when Workers != 0),
//     leased per request so repeated queries reuse scratch memory.
//
// Every query method takes a context.Context. Cancellation and deadlines
// are cooperative and cheap: the samplers poll ctx between sample blocks
// (never per edge) and the greedy solvers stop at round boundaries, so a
// cancelled query returns within one sample block with an error wrapping
// context.Canceled / context.DeadlineExceeded and — where meaningful — the
// partial result built so far. Uncancelled queries consume exactly the
// randomness the legacy path consumes: for the same Options, Engine.Solve
// and the free Solve return bit-identical Solutions.
//
// An Engine is safe for concurrent use: queries never mutate the pinned
// graph, and each request derives its own deterministic sampler state, so
// a query's result depends only on its request (not on what else is in
// flight). Identical requests always produce identical answers — the
// stateless semantics a serving tier wants (cmd/relmaxd builds on this).
type Engine struct {
	g       *Graph
	csr     *CSR
	opt     Options // defaults template; Sampler/Z/Seed resolved at build
	method  Method
	scratch *sampling.SharedScratch
}

// EngineOption configures NewEngine.
type EngineOption func(*Engine)

// WithSamplerKind selects the reliability estimator: "mc", "rss" (default)
// or "lazy".
func WithSamplerKind(kind string) EngineOption {
	return func(e *Engine) { e.opt.Sampler = kind }
}

// WithSampleSize sets the default sample budget Z per estimate.
func WithSampleSize(z int) EngineOption {
	return func(e *Engine) { e.opt.Z = z }
}

// WithSeed sets the engine's base seed. Every request derives its
// randomness deterministically from the seed in effect (engine default or
// per-request override), so a fixed seed makes the engine's answers
// reproducible across restarts.
func WithSeed(seed int64) EngineOption {
	return func(e *Engine) { e.opt.Seed = seed }
}

// WithWorkers sizes the sampling worker pool: 0 keeps the serial samplers
// (the legacy default), N >= 1 uses a deterministic parallel pool with N
// workers, negative values use GOMAXPROCS.
func WithWorkers(n int) EngineOption {
	return func(e *Engine) { e.opt.Workers = n }
}

// WithDefaultMethod sets the solver used when a Request leaves Method
// empty (default MethodBE).
func WithDefaultMethod(m Method) EngineOption {
	return func(e *Engine) { e.method = m }
}

// WithSolverDefaults replaces the engine's whole Options template (budget
// K, ζ, elimination width R, path count L, hop bound H, sampler config,
// workers, ...). Later options still override individual fields.
func WithSolverDefaults(opt Options) EngineOption {
	return func(e *Engine) { e.opt = opt }
}

// NewEngine builds a query engine over g: the graph is cloned and frozen
// once, the sampler configuration validated, and (for Workers != 0) the
// shared sampler pool created. On error the returned engine is nil.
func NewEngine(g *Graph, opts ...EngineOption) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("repro: NewEngine: nil graph: %w", ErrBadQuery)
	}
	e := &Engine{method: MethodBE}
	for _, o := range opts {
		o(e)
	}
	// Resolve the sampler-facing defaults now (mirroring the solver
	// defaults) so Estimate and EstimateMany see the same configuration a
	// Solve would.
	if e.opt.Sampler == "" {
		e.opt.Sampler = "rss"
	}
	if e.opt.Z <= 0 {
		e.opt.Z = 500
	}
	if e.opt.Seed == 0 {
		e.opt.Seed = 1
	}
	scratch, err := sampling.NewSharedScratch(e.opt.Sampler)
	if err != nil {
		return nil, fmt.Errorf("repro: NewEngine: sampler %q (want mc, rss or lazy): %w", e.opt.Sampler, ErrUnknownSampler)
	}
	e.scratch = scratch
	e.g = g.Clone()
	e.csr = e.g.Freeze()
	return e, nil
}

// Snapshot returns the engine's pinned immutable CSR snapshot; it is safe
// for unrestricted concurrent reads and never changes for the lifetime of
// the engine.
func (e *Engine) Snapshot() *CSR { return e.csr }

// options resolves the effective Options for one request: nil uses the
// engine defaults; a non-nil override is taken as-is except that zero
// Sampler/Z/Seed/Workers inherit the engine configuration (so overriding
// K or Zeta does not silently change the estimator). The engine's warm
// sampler pool is attached whenever the parallel path will run with a
// matching estimator kind.
func (e *Engine) options(req *Options) Options {
	opt := e.opt
	if req != nil {
		opt = *req
		if opt.Sampler == "" {
			opt.Sampler = e.opt.Sampler
		}
		if opt.Z <= 0 {
			opt.Z = e.opt.Z
		}
		if opt.Seed == 0 {
			opt.Seed = e.opt.Seed
		}
		if opt.Workers == 0 {
			opt.Workers = e.opt.Workers
		}
	}
	if opt.Workers != 0 && opt.Sampler == e.scratch.Kind() {
		opt.Scratch = e.scratch
	} else {
		opt.Scratch = nil
	}
	return opt
}

// Request is one single-source-target Problem 1 query served by
// Engine.Solve.
type Request struct {
	// S and T are the query endpoints.
	S, T NodeID
	// Method selects the solver; empty uses the engine default.
	Method Method
	// Options overrides the engine's solver defaults for this request;
	// nil uses them unchanged. Zero Sampler/Z/Seed/Workers fields inherit
	// the engine configuration.
	Options *Options
	// Progress, when non-nil, receives per-round solver progress
	// (candidates eliminated, paths extracted, batches evaluated). It
	// runs inline on the solving goroutine.
	Progress ProgressFunc
}

// MultiRequest is one multiple-source-target Problem 4 query served by
// Engine.SolveMulti.
type MultiRequest struct {
	Sources, Targets []NodeID
	// Aggregate selects the objective; empty uses AggAvg.
	Aggregate Aggregate
	// Method selects the solver; empty uses the engine default.
	// Supported: MethodBE, MethodHillClimbing, MethodEigen.
	Method   Method
	Options  *Options
	Progress ProgressFunc
}

// BudgetRequest is one total-probability-budget query (the §9 extension)
// served by Engine.SolveTotalBudget.
type BudgetRequest struct {
	S, T NodeID
	// Budget is the total probability mass to allocate across new edges.
	Budget   float64
	Options  *Options
	Progress ProgressFunc
}

// Solve answers a Problem 1 query under ctx. On cancellation or deadline
// expiry it returns the partial Solution built so far (chosen edges,
// elimination stats; no held-out evaluation) and an error wrapping
// ctx.Err(); on success the Solution is bit-identical to the legacy free
// Solve at the same effective Options.
func (e *Engine) Solve(ctx context.Context, req Request) (Solution, error) {
	method := req.Method
	if method == "" {
		method = e.method
	}
	opt := e.options(req.Options)
	if req.Progress != nil {
		opt.Progress = req.Progress
	}
	sol, err := core.Solve(ctx, e.g, req.S, req.T, method, opt)
	if err == nil && sol.PathCount == 0 && (method == MethodIP || method == MethodBE) {
		// The legacy free Solve returns an empty zero-gain Solution here;
		// the Engine surface is stricter so serving layers can tell
		// "nothing to improve" apart from a real answer.
		return sol, fmt.Errorf("repro: method %q extracted no s-t path on the augmented graph: %w", method, ErrNoPath)
	}
	return sol, err
}

// SolveMulti answers a Problem 4 query under ctx; see Solve for the
// cancellation contract.
func (e *Engine) SolveMulti(ctx context.Context, req MultiRequest) (MultiSolution, error) {
	agg := req.Aggregate
	if agg == "" {
		agg = AggAvg
	}
	method := req.Method
	if method == "" {
		method = e.method
	}
	opt := e.options(req.Options)
	if req.Progress != nil {
		opt.Progress = req.Progress
	}
	return core.SolveMulti(ctx, e.g, req.Sources, req.Targets, agg, method, opt)
}

// SolveTotalBudget answers a §9 total-budget query under ctx; see Solve
// for the cancellation contract.
func (e *Engine) SolveTotalBudget(ctx context.Context, req BudgetRequest) (TotalBudgetSolution, error) {
	opt := e.options(req.Options)
	if req.Progress != nil {
		opt.Progress = req.Progress
	}
	return core.SolveTotalBudget(ctx, e.g, req.S, req.T, req.Budget, opt)
}

// estimator builds the request-scoped reliability estimator: a parallel
// sampler leasing workers from the engine's warm pool, or a fresh serial
// sampler when Workers == 0. Each call starts from the engine seed, so
// identical estimation requests return identical values regardless of
// what ran before — and exactly what an equally configured
// NewParallelSampler (or serial sampler) would return on its first call.
func (e *Engine) estimator(ctx context.Context) sampling.Sampler {
	if e.opt.Workers != 0 {
		ps := sampling.NewParallelShared(e.scratch, e.opt.Z, e.opt.Seed, e.opt.Workers)
		ps.SetContext(ctx)
		return ps
	}
	smp, err := sampling.NewSerial(e.opt.Sampler, e.opt.Z, e.opt.Seed)
	if err != nil {
		// The kind was validated by NewEngine.
		panic(err)
	}
	smp.SetContext(ctx)
	return smp
}

func (e *Engine) checkNode(v NodeID) error {
	if v < 0 || int(v) >= e.g.N() {
		return fmt.Errorf("repro: node %d out of range [0,%d): %w", v, e.g.N(), ErrBadQuery)
	}
	return nil
}

// Estimate returns the s-t reliability on the pinned snapshot under ctx.
// Cancellation aborts within one sample block and returns an error
// wrapping ctx.Err().
func (e *Engine) Estimate(ctx context.Context, s, t NodeID) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := e.checkNode(s); err != nil {
		return 0, err
	}
	if err := e.checkNode(t); err != nil {
		return 0, err
	}
	smp := e.estimator(ctx)
	var rel float64
	if cs, ok := smp.(sampling.CSRSampler); ok {
		rel = cs.ReliabilityCSR(e.csr, s, t)
	} else {
		rel = smp.Reliability(e.g, s, t)
	}
	if cerr := ctx.Err(); cerr != nil {
		return 0, fmt.Errorf("repro: estimate interrupted: %w", cerr)
	}
	return rel, nil
}

// EstimateMany returns the reliability of every (S, T) query in one
// batched, deterministic call. With Workers != 0 the (query, shard)
// product fans out over the worker pool; serially the queries run in
// order. On cancellation it returns an error wrapping ctx.Err(), along
// with the prefix of completed results when the serial path produced one
// (the parallel merge is discarded — partially sharded estimates are not
// meaningful).
func (e *Engine) EstimateMany(ctx context.Context, queries []PairQuery) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, q := range queries {
		if err := e.checkNode(q.S); err != nil {
			return nil, err
		}
		if err := e.checkNode(q.T); err != nil {
			return nil, err
		}
	}
	if len(queries) == 0 {
		return nil, nil
	}
	smp := e.estimator(ctx)
	if bs, ok := smp.(sampling.BatchSampler); ok {
		out := bs.EstimateMany(e.g, queries)
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("repro: estimate batch interrupted: %w", cerr)
		}
		return out, nil
	}
	cs := smp.(sampling.CSRSampler) // every built-in serial sampler is one
	out := make([]float64, 0, len(queries))
	for _, q := range queries {
		if q.S == q.T {
			out = append(out, 1)
			continue
		}
		rel := cs.ReliabilityCSR(e.csr, q.S, q.T)
		if cerr := ctx.Err(); cerr != nil {
			// rel was cut short by the cancellation; keep only the fully
			// estimated prefix.
			return out, fmt.Errorf("repro: estimate batch interrupted after %d/%d queries: %w",
				len(out), len(queries), cerr)
		}
		out = append(out, rel)
	}
	return out, nil
}
