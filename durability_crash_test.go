package repro

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/store"
)

// copyDir clones a flat dataset directory — the crash harness snapshots
// the on-disk state once and replays every kill point against a fresh
// copy, so recovery repairs never contaminate the next kill point.
func copyDir(t testing.TB, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// durableHistory runs N random Apply batches against a durable engine and
// records, per committed batch, the epoch and a bit-exact estimate — the
// oracle every crash point is checked against. The returned directory
// holds the final on-disk state; the engine is closed.
func durableHistory(t testing.TB, batches int, opts ...EngineOption) (dir string, epochs []uint64, estimates []uint64) {
	t.Helper()
	dir = t.TempDir()
	g := durTestGraph(t)
	eng, err := NewEngine(g, append([]EngineOption{WithStorage(dir), WithSeed(7)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	r := rand.New(rand.NewSource(99))
	oracle := g.Clone()
	for i := 0; i < batches; i++ {
		ep, err := eng.Apply(ctx, randomMutationBatch(t, r, oracle)...)
		if err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, ep)
		estimates = append(estimates, estimateBits(t, eng, 0, 12))
	}
	eng.Close()
	return dir, epochs, estimates
}

// reopenQuietly recovers a copy of the dataset with store warnings routed
// to the test log, returning the engine.
func reopenQuietly(t testing.TB, dir string) *Engine {
	t.Helper()
	fs, err := store.OpenFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs.SetLogf(t.Logf)
	eng, err := RecoverEngine(fs, WithSeed(7))
	if err != nil {
		fs.Close()
		t.Fatalf("recover %s: %v", dir, err)
	}
	return eng
}

// assertRecoveredState reopens dir and checks the engine landed exactly on
// the oracle state for batch index idx — same epoch, bit-identical
// estimate. It reopens a second time to prove the recovery repair itself
// was durable (recover must be idempotent, not a one-shot parse).
func assertRecoveredState(t *testing.T, dir string, wantEpoch, wantBits uint64, label string) {
	t.Helper()
	for round := 0; round < 2; round++ {
		eng := reopenQuietly(t, dir)
		if eng.Epoch() != wantEpoch {
			eng.Close()
			t.Fatalf("%s (reopen %d): recovered epoch %d, want %d", label, round, eng.Epoch(), wantEpoch)
		}
		if got := estimateBits(t, eng, 0, 12); got != wantBits {
			eng.Close()
			t.Fatalf("%s (reopen %d): estimate %x, want %x (not bit-identical)", label, round, got, wantBits)
		}
		eng.Close()
	}
}

// TestCrashEveryWALTailTruncation is the crash-injection suite's core: a
// run of random committed batches, then a simulated crash at EVERY byte
// boundary inside the final WAL record. Each kill point must recover the
// last fully-committed epoch — never a torn one, never a panic — with
// estimates bit-identical to the live engine at that epoch.
func TestCrashEveryWALTailTruncation(t *testing.T) {
	const batches = 6
	// Huge checkpoint thresholds: every batch stays in the WAL, so the
	// tail record is the last of `batches` records.
	dir, epochs, estimates := durableHistory(t, batches, WithCheckpointEvery(1<<30, 1<<60))

	wal, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	recs, valid := store.DecodeWAL(wal)
	if len(recs) != batches || valid != len(wal) {
		t.Fatalf("WAL holds %d records in %d/%d valid bytes, want %d", len(recs), valid, len(wal), batches)
	}
	lastStart := valid - store.EncodedBatchSize(recs[batches-1])

	// Sanity: the untouched directory recovers the final state.
	assertRecoveredState(t, copyDir(t, dir), epochs[batches-1], estimates[batches-1], "no truncation")

	for cut := lastStart; cut < len(wal); cut++ {
		crash := copyDir(t, dir)
		if err := os.Truncate(filepath.Join(crash, "wal.log"), int64(cut)); err != nil {
			t.Fatal(err)
		}
		assertRecoveredState(t, crash, epochs[batches-2], estimates[batches-2],
			"truncated at byte "+strconv.Itoa(cut))
	}
}

// TestCrashWALTailWithCheckpoints is the same tail-kill harness with the
// checkpoint policy live (every 2 batches): recovery must compose the
// newest checkpoint with the surviving WAL suffix and still land on the
// last fully-committed epoch.
func TestCrashWALTailWithCheckpoints(t *testing.T) {
	const batches = 5 // checkpoints after batch 2 and 4; batch 5 lives in the WAL
	dir, epochs, estimates := durableHistory(t, batches, WithCheckpointEvery(2, 1<<60))

	wal, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	recs, valid := store.DecodeWAL(wal)
	if len(recs) != 1 || valid != len(wal) {
		t.Fatalf("WAL holds %d records, want exactly the post-checkpoint batch", len(recs))
	}

	for cut := 0; cut < len(wal); cut++ {
		crash := copyDir(t, dir)
		if err := os.Truncate(filepath.Join(crash, "wal.log"), int64(cut)); err != nil {
			t.Fatal(err)
		}
		// Every cut tears the sole record, so recovery falls back to the
		// batch-4 checkpoint exactly.
		assertRecoveredState(t, crash, epochs[batches-2], estimates[batches-2],
			"ckpt+tail truncated at byte "+strconv.Itoa(cut))
	}
}

// TestCrashMidCheckpoint simulates dying inside a checkpoint write: a
// partial .tmp file is on disk, the previous checkpoint and the full WAL
// are intact. Recovery must ignore and remove the partial file and land on
// the final committed epoch.
func TestCrashMidCheckpoint(t *testing.T) {
	const batches = 4
	dir, epochs, estimates := durableHistory(t, batches, WithCheckpointEvery(1<<30, 1<<60))

	crash := copyDir(t, dir)
	tmp := filepath.Join(crash, "ckpt-00000000000000ff.snap.tmp")
	if err := os.WriteFile(tmp, []byte("partial checkpoint write"), 0o644); err != nil {
		t.Fatal(err)
	}
	assertRecoveredState(t, crash, epochs[batches-1], estimates[batches-1], "mid-checkpoint kill")
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("partial .tmp survived recovery: %v", err)
	}
}

// TestCrashCorruptTailByte flips one byte inside the final record's
// payload (a torn sector rather than a clean truncation): recovery must
// detect it via CRC and fall back to the previous committed epoch.
func TestCrashCorruptTailByte(t *testing.T) {
	const batches = 4
	dir, epochs, estimates := durableHistory(t, batches, WithCheckpointEvery(1<<30, 1<<60))

	wal, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	recs, valid := store.DecodeWAL(wal)
	if len(recs) != batches {
		t.Fatalf("WAL holds %d records, want %d", len(recs), batches)
	}
	lastStart := valid - store.EncodedBatchSize(recs[batches-1])

	crash := copyDir(t, dir)
	path := filepath.Join(crash, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[lastStart+10] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	assertRecoveredState(t, crash, epochs[batches-2], estimates[batches-2], "corrupt tail byte")
}
