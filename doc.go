// Package repro is a Go implementation of "Reliability Maximization in
// Uncertain Graphs" (Ke, Khan, Al Hasan, Rezvansangsari; ICDE 2021 /
// arXiv:1903.08587): given an uncertain graph — where each edge carries an
// independent existence probability — and a source/target query, it finds
// the best k new edges (shortcut edges, each with probability ζ) to add so
// that the s-t reliability is maximized.
//
// The problem is NP-hard, admits no PTAS, and its objective is neither
// submodular nor supermodular, so the library implements the paper's
// practical pipeline:
//
//  1. reliability-based search space elimination (top-r nodes most
//     reliable from s and to t, optional h-hop constraint on new edges),
//  2. top-l most reliable path extraction over the candidate-augmented
//     graph, and
//  3. greedy path-batch selection (BE) under the budget k — with
//     individual-path selection (IP), the exact polynomial solver for the
//     restricted most-reliable-path problem (MRP), the §3 baselines
//     (individual top-k, hill climbing, centrality, eigenvalue), and
//     exhaustive search for small instances as alternatives.
//
// # Quick start: the Engine
//
// Engine is the primary entry point: built once per dataset, it pins an
// immutable CSR snapshot of the graph and a reusable sampler pool, and
// serves concurrent, cancellable queries:
//
//	g := repro.NewGraph(4, false)
//	g.MustAddEdge(2, 1, 0.9)
//	g.MustAddEdge(2, 3, 0.3)
//	eng, err := repro.NewEngine(g,
//		repro.WithSeed(7),
//		repro.WithWorkers(-1), // parallel sampling on all CPUs
//	)
//	if err != nil { ... }
//
//	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
//	defer cancel()
//	sol, err := eng.Solve(ctx, repro.Request{S: 0, T: 3, Method: repro.MethodBE,
//		Options: &repro.Options{K: 2, Zeta: 0.5}})
//	// sol.Edges are the shortcut edges; sol.Gain the reliability gain.
//
//	rel, err := eng.Estimate(ctx, 0, 3)                   // one reliability
//	rels, err := eng.EstimateMany(ctx, []repro.PairQuery{ // a batch
//		{S: 0, T: 3}, {S: 1, T: 3}})
//
// Cancellation is cooperative and cheap: the samplers poll ctx between
// sample blocks (never per edge), so a cancelled or deadline-expired query
// returns within one block with an error wrapping context.Canceled or
// context.DeadlineExceeded — and, where meaningful, the partial result
// built so far (Solution.Edges holds the edges committed before the
// context fired). Uncancelled queries consume exactly the randomness the
// legacy entry points consume: results are bit-identical at the same
// Options, at any worker count.
//
// Errors form a typed taxonomy (ErrBadQuery, ErrUnknownMethod,
// ErrUnknownSampler, ErrBudget, ErrNoPath, ErrOverloaded): every solver
// error wraps exactly one sentinel, so callers route with errors.Is.
// Request.Progress receives per-round solver progress (candidates
// eliminated, paths extracted, batches evaluated) for logs and dashboards.
//
// An Engine is safe for concurrent use and stateless per request:
// identical requests return identical answers regardless of what else is
// in flight — the property the HTTP server in cmd/relmaxd builds on (see
// examples/server for a curl walkthrough).
//
// Multiple-source/target queries (Problem 4) are served by
// Engine.SolveMulti under Average, Minimum and Maximum aggregates, and the
// §9 total-probability-budget extension by Engine.SolveTotalBudget.
//
// # Queries, jobs and the result cache
//
// Underneath the five typed methods sits one unified query surface: a
// Query names a kind (solve, multi, total-budget, estimate,
// estimate-many) plus its parameters, and Engine.Run dispatches it. Every
// Query canonicalizes (Engine.Canonicalize) to a deterministic fingerprint
// (Query.Key) under which results are cacheable: with WithResultCache(n),
// a repeated identical query returns the cached, bit-identical Result
// without recomputing — repeated (s, t) eliminations, dashboard refreshes,
// retried requests.
//
// Long-running queries are served asynchronously as jobs:
//
//	job, err := eng.Submit(ctx, repro.Query{Kind: repro.QuerySolve, S: 0, T: 3})
//	// err wraps ErrOverloaded when the bounded queue is full (load shedding)
//	st := job.Status()   // queued/running/done/cancelled/failed + per-round progress
//	<-job.Done()
//	res, err := job.Result()
//	job.Cancel()         // cooperative: lands within one sample block
//
// Jobs run on a bounded worker queue (WithMaxConcurrent, WithQueueDepth),
// are detached from the submitting context (an HTTP handler can return
// while the job runs), record their solver progress events for streaming
// (Job.Events), and report cache hits in their status. Engine.Stats
// exposes the serving counters (queue gauges, job outcomes, cache
// hit/miss, the current epoch) that back cmd/relmaxd's /metrics endpoint.
//
// # Anytime queries
//
// Fixed sample budgets waste work in both directions: an easy query is
// obvious after a few hundred samples, a hard one is still noisy after the
// full budget with nothing to say about how noisy. Setting
// Options.Precision switches an estimate (or estimate-many) into anytime
// mode: sampling proceeds in 64-aligned blocks, a running confidence
// interval (Wilson score and Hoeffding bound, whichever is tighter at 95%
// confidence) narrows as blocks land, and the query stops at the first of
// three events — the interval's half-width reaches Precision, the adaptive
// budget cap Options.MaxZ is exhausted, or the context deadline fires.
// The Result carries the interval alongside the point:
//
//	res, err := eng.Run(ctx, repro.Query{Kind: repro.QueryEstimate, S: 0, T: 3,
//		Options: &repro.Options{Precision: 0.01}})
//	a := res.Anytime // Point, [Lo, Hi], SamplesUsed, StopReason
//
// StopReason is one of StopPrecision, StopBudget, StopDeadline — a
// deadline expiry is an answer with honest error bars, not an error.
// Progress callbacks (and job status/events) stream the narrowing
// interval as StageEstimate events, and Stats counts the samples adaptive
// stopping saved against the fixed budget (AnytimeEstimates,
// AnytimeSamplesUsed, AnytimeSamplesSaved).
//
// The determinism contract extends to anytime runs: for a fixed seed the
// block schedule and stop decision are deterministic, and the sampled
// stream is bit-identical to a fixed-budget run truncated at the same
// length — at any worker count, for every sampler kind.
//
// Anytime results compose with the result cache under upgrade semantics:
// Precision is deliberately excluded from the canonical fingerprint, so
// all precisions of one (s, t) estimate share a cache slot holding the
// tightest interval computed so far. A cached tight interval serves any
// looser request bit-identically; a tighter request recomputes and
// upgrades the slot; fixed-budget estimates keep their own keys. This is
// also the load-shedding primitive cmd/relmaxd's -shed-precision flag
// builds on: under queue pressure the server widens served precision
// (labelled in the response) before it starts refusing requests.
//
// # Datasets and mutation
//
// A deployed server does not freeze its graphs forever: edges arrive,
// probabilities get re-estimated, datasets get loaded and retired while
// queries are in flight. Two types carry that lifecycle.
//
// A Catalog is a registry of named datasets, each served by its own
// Engine, managed at runtime:
//
//	cat := repro.NewCatalog(repro.WithResultCache(256), repro.WithWorkers(-1))
//	eng, err := cat.Create("social", g)     // register a graph
//	eng, err = cat.Load("roads", "g.txt")   // or an edge-list file
//	eng, err = cat.Open("social")           // resolve for serving
//	infos := cat.List()                     // names, epochs, graph sizes
//	err = cat.Close("roads")                // retire: cancels its jobs
//
// An Engine's graph is mutable behind versioned snapshots. Apply commits
// an atomic batch of mutations — AddEdge, SetProb, RemoveEdge — by
// building the next epoch aside and rotating it in with one pointer swap:
//
//	epoch, err := eng.Apply(ctx,
//		repro.AddEdge(3, 42, 0.5),
//		repro.SetProb(7, 9, 0.25),
//		repro.RemoveEdge(1, 4))
//
// The next epoch is a delta overlay, not a rebuild: it shares the previous
// snapshot's flat CSR arrays and materializes only the adjacency rows the
// batch touched, in exactly the arc order a full rebuild would produce, so
// every query on the layered snapshot is bit-identical to one on a
// rebuilt-from-scratch graph at the same epoch. Honest cost accounting:
// a commit is O(batch size · touched-row degree) — independent of graph
// size — but it is not free forever. Each commit stacks one overlay layer,
// and a background compactor folds the chain back into a flat CSR when it
// exceeds a bounded depth or the materialized rows exceed a fraction of
// the graph (WithCompactionPolicy; Engine.Compact forces it; Stats reports
// DeltaCommits, Compactions and ChainDepth). The fold costs one O(N+M)
// rebuild, so the rebuild you avoided per commit is really amortized
// across the chain — roughly rebuild/depth per commit — and a batch that
// touches a large fraction of the graph approaches the rebuild cost
// outright. WithFlatCommits restores the legacy rebuild-per-commit path
// (it is the differential-test oracle and the BenchmarkApply baseline).
//
// Readers never lock against writers: every query pins the snapshot
// current at canonicalization (jobs pin at Submit), so work in flight
// across an Apply completes on the graph it started on, bit-identical to
// a never-mutated engine; compaction republishes the same epoch in flat
// form and disturbs nothing. The graph epoch is part of every canonical
// fingerprint (Query.Key), which makes cache invalidation free of
// correctness risk: the same query after a mutation is a new fingerprint,
// so it can only miss; stale-epoch entries become unreachable and are
// evicted lazily (Stats reports the reclaimed count). WithCacheWarming
// softens the post-mutation miss storm: after each rotation the engine
// re-submits up to N of the outgoing epoch's most-recently-used cached
// fingerprints at normal queue priority — bounded, single-flight, shed
// outright when the queue is full — and Stats counts the entries it
// recomputed (CacheWarmed). A batch is all-or-nothing — the first invalid
// mutation (ErrBadMutation) aborts it with the epoch unchanged.
// Consecutive removals in one batch are compacted in a single O(N+M) pass
// (Graph.RemoveEdges) on the flat path instead of paying the edge-ID
// renumbering per edge, so bulk pruning costs the same as one removal.
//
// cmd/relmaxd exposes the whole lifecycle over HTTP: POST/GET/DELETE
// /v2/datasets to create (from a built-in stand-in, a server-local file
// or an uploaded edge list), list and close datasets, and
// POST /v2/datasets/{name}/mutations to mutate — see examples/server.
//
// # Durability
//
// An engine is in-memory by default; WithStorage makes it durable on
// plain append-only files:
//
//	eng, err := repro.NewEngine(g, repro.WithStorage("/data/social")) // initialize
//	epoch, err := eng.Apply(ctx, repro.AddEdge(3, 42, 0.5))          // fsynced before return
//	eng.Close()
//	eng, err = repro.OpenEngine("/data/social")                      // recover, exact epoch
//
// Every Apply appends the committed batch — its post-batch epoch plus the
// encoded mutations, CRC32C-framed — to a write-ahead log and fsyncs it
// BEFORE the new snapshot rotates in: an acknowledged epoch survives any
// crash. A checkpoint policy (WithCheckpointEvery, default every 64
// batches or 4 MiB of WAL; Engine.Checkpoint forces one) serializes the
// current epoch's edge set to a snapshot file — written to a temp file,
// fsynced, atomically renamed — and truncates the WAL, bounding recovery
// time. A checkpoint of a delta-layered epoch folds the chain first, so
// the file always describes the flat form and recovery is byte-identical
// whether the epoch was committed layered or flat. Recovery loads the newest valid checkpoint and replays the WAL
// through the same mutation machinery Apply uses, arriving at the exact
// committed epoch; because edges replay in edge-ID order, the recovered
// CSR is bit-identical and every query kind answers exactly as the
// pre-crash engine did. A torn or corrupt WAL tail (a crash mid-append)
// is detected by CRC, truncated with a logged warning and never panics;
// unacknowledged tail batches are the only thing lost.
//
// Catalogs scale this to many datasets: SetStorage(root) persists every
// dataset under root/<name>, Restore recovers one by name, StoredNames
// lists what a previous process left behind, and DropStorage deletes a
// retired dataset's bytes. cmd/relmaxd wires these to -data-dir: stored
// datasets are recovered on boot (winning over same-named command-line
// seeds) and DELETE /v2/datasets/{name} drops the stored state. Stats
// reports Durable, Checkpoints and CheckpointErrors; a failed checkpoint
// never fails an Apply (the WAL already holds the batch) and is retried
// on the next one.
//
// # Replication
//
// The durability primitives double as a replication substrate: the
// store.Batch records a primary fsyncs to its WAL are exactly what a read
// replica needs to mirror it. Engine.ApplyReplicated commits one such
// batch through the same delta-overlay pipeline Apply uses (with the same
// background compaction) — validated against the replica's current epoch
// (b.PrevEpoch() must match, else ErrReplicaGap), never re-appended to a
// local WAL, and counted in Stats as ReplicatedApplies/ReplicatedMutations
// distinct from local traffic. Because the batch replays the same
// operations in the same order, a replica at epoch E answers every query
// bit-identically to the primary's pinned-epoch-E snapshot.
//
// Bootstrap and gap repair ship a full checkpoint instead:
// GraphFromSnapshot rebuilds a graph from a store.Snapshot (edge-ID order
// reproduces the primary's CSR byte for byte), Catalog.CreateFromSnapshot
// registers it as a served dataset at the snapshot's exact epoch, and
// Engine.ResetToSnapshot adopts one wholesale on a live engine, purging
// the result cache (a re-bootstrap may move the epoch backwards).
// Replica datasets are deliberately never durable: a replica's state is a
// cache of the primary's log, rebuilt over the feed on restart, not a
// second source of truth.
//
// Catalog.SetStoreWrapper is the primary-side seam: a configured wrapper
// interposes on every durable store the catalog opens, which is how
// internal/replication taps AppendBatch (post-fsync, pre-rotation) to
// stream committed batches to subscribers. cmd/relmaxd wires the whole
// loop: -role primary serves a per-dataset feed (checkpoint ship + WAL
// tail + heartbeats over long-lived HTTP), -role replica follows a
// primary read-only and re-bootstraps on any gap, and -role router
// spreads reads across replicas while routing writes to the primary,
// surfacing per-replica epoch lag in /metrics.
//
// # Legacy compatibility
//
// The original free functions — Solve, SolveMulti, SolveTotalBudget,
// RunExperiment — remain as thin wrappers running under
// context.Background with a fresh sampler per call. They cannot be
// cancelled and rebuild per-call state, but return bit-identical results
// to an Engine configured with the same Options; existing callers keep
// working unchanged.
//
// # Sampling
//
// Reliability estimation uses Monte Carlo sampling, recursive stratified
// sampling (RSS), lazy-propagation MC, or word-parallel vector Monte Carlo
// ("mcvec"); the serial estimators are exposed via NewMonteCarloSampler,
// NewRSSSampler, NewLazySampler and NewMCVecSampler and are
// single-goroutine only. NewParallelSampler wraps any of them into a
// goroutine-safe estimator that shards the sample budget across workers
// deterministically and supports batched evaluation (EstimateMany,
// EstimateEdges). Every sampler accepts a context via SetContext for
// block-granular cancellation.
//
// The vector sampler simulates 64 possible worlds per BFS traversal by
// packing edge existence into uint64 lane masks, drawing 64 Bernoulli
// trials per RNG interaction; on the single-source estimators this is an
// order-of-magnitude throughput win over scalar MC at the same budget.
// Its determinism contract matches the scalar samplers — a fixed seed is
// bit-identical across runs and worker counts (shard budgets are
// 64-aligned so lane blocks never split) — but its random stream differs
// from scalar MC's, so "mc" and "mcvec" estimates agree statistically, not
// bitwise.
//
// # Snapshots and the sampling hot path
//
// Internally every estimate runs on a frozen CSR snapshot of the graph
// (Graph.Freeze): a flat, immutable adjacency layout with arc-aligned
// probabilities that the samplers traverse with zero heap allocations per
// sample in steady state. The snapshot is cached on the graph, stamped
// with the graph's mutation version as its epoch (CSR.Epoch), and
// invalidated by mutations (AddEdge, SetProb, RemoveEdge); snapshots
// already handed out remain valid — an Engine clones the graph at
// construction, so its snapshots are isolated from caller mutations, and
// Engine.Apply only ever swaps in freshly built ones. Candidate-evaluation
// loops derive lightweight overlay views (one candidate edge over a shared
// base snapshot) instead of cloning the graph, which is what makes the
// batched EstimateEdges path cheap.
//
// Dataset stand-ins for the paper's evaluation graphs and the full
// experiment harness (one runner per table/figure) are exposed via
// LoadDataset and RunExperiment / RunExperimentContext.
package repro
