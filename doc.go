// Package repro is a Go implementation of "Reliability Maximization in
// Uncertain Graphs" (Ke, Khan, Al Hasan, Rezvansangsari; ICDE 2021 /
// arXiv:1903.08587): given an uncertain graph — where each edge carries an
// independent existence probability — and a source/target query, it finds
// the best k new edges (shortcut edges, each with probability ζ) to add so
// that the s-t reliability is maximized.
//
// The problem is NP-hard, admits no PTAS, and its objective is neither
// submodular nor supermodular, so the library implements the paper's
// practical pipeline:
//
//  1. reliability-based search space elimination (top-r nodes most
//     reliable from s and to t, optional h-hop constraint on new edges),
//  2. top-l most reliable path extraction over the candidate-augmented
//     graph, and
//  3. greedy path-batch selection (BE) under the budget k — with
//     individual-path selection (IP), the exact polynomial solver for the
//     restricted most-reliable-path problem (MRP), the §3 baselines
//     (individual top-k, hill climbing, centrality, eigenvalue), and
//     exhaustive search for small instances as alternatives.
//
// Multiple-source/target queries (Problem 4) are supported under Average,
// Minimum and Maximum aggregates, serving applications such as targeted
// influence maximization; see SolveMulti.
//
// # Quick start
//
//	g := repro.NewGraph(4, false)
//	g.MustAddEdge(2, 1, 0.9)
//	g.MustAddEdge(2, 3, 0.3)
//	sol, err := repro.Solve(g, 0, 3, repro.MethodBE, repro.Options{K: 2, Zeta: 0.5})
//	// sol.Edges are the shortcut edges; sol.Gain the reliability gain.
//
// Set Options.Workers to run every reliability estimate inside the solver
// on a parallel worker pool (Workers: -1 uses all CPUs). Results stay
// deterministic in Options.Seed: any Workers >= 1 gives bit-identical
// output regardless of the pool size or GOMAXPROCS.
//
//	sol, err = repro.Solve(g, 0, 3, repro.MethodBE,
//		repro.Options{K: 2, Zeta: 0.5, Workers: -1})
//
// Reliability estimation uses Monte Carlo sampling or recursive stratified
// sampling (RSS); both are exposed via NewMonteCarloSampler and
// NewRSSSampler. Those serial samplers are single-goroutine only;
// NewParallelSampler wraps either into a goroutine-safe estimator that
// shards the sample budget across workers and supports batched evaluation
// (EstimateMany, EstimateEdges) for serving many queries at once.
//
// # Snapshots and the sampling hot path
//
// Internally every estimate runs on a frozen CSR snapshot of the graph
// (Graph.Freeze): a flat, immutable adjacency layout with arc-aligned
// probabilities that the samplers traverse with zero heap allocations per
// sample in steady state. The snapshot is cached on the graph and
// invalidated by mutations (AddEdge, SetProb); snapshots already handed
// out remain valid. Candidate-evaluation loops derive lightweight overlay
// views (one candidate edge over a shared base snapshot) instead of
// cloning the graph, which is what makes the batched EstimateEdges path
// cheap. Estimates are bit-identical for a fixed seed whether a graph is
// sampled directly, through its snapshot, or through an overlay, at any
// worker count.
//
// Dataset stand-ins for the paper's evaluation graphs and the full
// experiment harness (one runner per table/figure) are exposed via
// LoadDataset and RunExperiment.
package repro
