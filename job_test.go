package repro

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// slowEstimateQuery is a query big enough to stay running until cancelled
// on any hardware, but cheap to start.
func slowEstimateQuery() Query {
	return Query{Kind: QueryEstimate, S: 0, T: 17, Options: &Options{Z: 50_000_000}}
}

func waitTerminal(t *testing.T, j *Job) JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not terminate: %+v", j.ID(), j.Status())
	}
	return j.Status()
}

// TestJobLifecycleDone: a submitted job advances queued → running → done,
// closes Done exactly once, and its Result matches the synchronous path
// bit for bit.
func TestJobLifecycleDone(t *testing.T) {
	g := engineTestGraph(t)
	opt := Options{K: 2, Z: 200, Seed: 9, R: 8, L: 8}
	eng, err := NewEngine(g, WithSolverDefaults(opt))
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Solve(context.Background(), Request{S: 0, T: 39, Method: MethodBE})
	if err != nil {
		t.Fatal(err)
	}
	job, err := eng.Submit(context.Background(), Query{Kind: QuerySolve, S: 0, T: 39, Method: MethodBE})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != JobDone {
		t.Fatalf("state = %s (err %v), want done", st.State, st.Err)
	}
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !sameSolution(want, res.Solution) {
		t.Fatalf("job result diverged from synchronous solve:\nsync %+v\njob  %+v", want, res.Solution)
	}
	if st.Enqueued.IsZero() || st.Started.IsZero() || st.Finished.IsZero() {
		t.Fatalf("lifecycle timestamps missing: %+v", st)
	}
	// Progress events were recorded and accumulated into the status.
	events, _ := job.Events(0)
	if len(events) == 0 || st.Progress.Events != len(events) {
		t.Fatalf("progress events not recorded: %d events, status %+v", len(events), st.Progress)
	}
	if st.Progress.Candidates == 0 || st.Progress.Round == 0 {
		t.Fatalf("per-round progress not accumulated: %+v", st.Progress)
	}
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
	}
}

// TestJobCancelWhileRunning: cancelling a running job must land within one
// sample block and report JobCancelled.
func TestJobCancelWhileRunning(t *testing.T) {
	g := engineTestGraph(t)
	eng, err := NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	job, err := eng.Submit(context.Background(), slowEstimateQuery())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it actually runs, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for job.Status().State == JobQueued {
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", job.Status())
		}
		time.Sleep(time.Millisecond)
	}
	job.Cancel()
	st := waitTerminal(t, job)
	if st.State != JobCancelled {
		t.Fatalf("state = %s, want cancelled (err %v)", st.State, st.Err)
	}
	if _, err := job.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled job error %v does not wrap context.Canceled", err)
	}
}

// TestJobCancelWhileQueued: with a single worker slot occupied by a slow
// job, a queued job cancelled before it starts must finish JobCancelled
// without ever running.
func TestJobCancelWhileQueued(t *testing.T) {
	g := engineTestGraph(t)
	eng, err := NewEngine(g, WithMaxConcurrent(1), WithQueueDepth(8))
	if err != nil {
		t.Fatal(err)
	}
	blocker, err := eng.Submit(context.Background(), slowEstimateQuery())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		blocker.Cancel()
		waitTerminal(t, blocker)
	}()
	// Wait until the blocker holds the single worker slot, so the next
	// submission cannot race it for the semaphore.
	deadline := time.Now().Add(30 * time.Second)
	for blocker.Status().State != JobRunning {
		if time.Now().After(deadline) {
			t.Fatalf("blocker never started: %+v", blocker.Status())
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := eng.Submit(context.Background(), Query{Kind: QueryEstimate, S: 1, T: 22})
	if err != nil {
		t.Fatal(err)
	}
	if st := queued.Status(); st.State != JobQueued {
		t.Fatalf("second job is %s, want queued behind the single slot", st.State)
	}
	queued.Cancel()
	st := waitTerminal(t, queued)
	if st.State != JobCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	if !st.Started.IsZero() {
		t.Fatalf("cancelled-while-queued job reports a start time: %+v", st)
	}
}

// TestSubmitOverloaded: submissions beyond maxConcurrent+queueDepth fail
// fast with ErrOverloaded, and the engine recovers once the queue drains.
func TestSubmitOverloaded(t *testing.T) {
	g := engineTestGraph(t)
	eng, err := NewEngine(g, WithMaxConcurrent(1), WithQueueDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	// Slot 1 runs, 2 wait; the pool may briefly leave a finished slot
	// occupied, so tolerate the scheduler by submitting exactly capacity.
	for i := 0; i < 3; i++ {
		j, err := eng.Submit(context.Background(), Query{Kind: QueryEstimate, S: NodeID(i), T: 17,
			Options: &Options{Z: 50_000_000}})
		if err != nil {
			t.Fatalf("submission %d rejected: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	if _, err := eng.Submit(context.Background(), Query{Kind: QueryEstimate, S: 5, T: 17,
		Options: &Options{Z: 50_000_000}}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-capacity submit error %v does not wrap ErrOverloaded", err)
	}
	if got := eng.Stats().RejectedJobs; got != 1 {
		t.Fatalf("RejectedJobs = %d, want 1", got)
	}
	for _, j := range jobs {
		j.Cancel()
		waitTerminal(t, j)
	}
	// Capacity is released: a small job must be accepted and finish.
	j, err := eng.Submit(context.Background(), Query{Kind: QueryEstimate, S: 0, T: 17})
	if err != nil {
		t.Fatalf("post-drain submit rejected: %v", err)
	}
	if st := waitTerminal(t, j); st.State != JobDone {
		t.Fatalf("post-drain job = %s (err %v)", st.State, st.Err)
	}
}

// TestQueueDepthZero: an explicit zero queue depth means strict shedding —
// admission capacity is exactly the running slots.
func TestQueueDepthZero(t *testing.T) {
	g := engineTestGraph(t)
	eng, err := NewEngine(g, WithMaxConcurrent(1), WithQueueDepth(0))
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.QueueDepth != 0 {
		t.Fatalf("QueueDepth = %d, want 0 (explicit zero must not default to 64)", st.QueueDepth)
	}
	blocker, err := eng.Submit(context.Background(), slowEstimateQuery())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		blocker.Cancel()
		waitTerminal(t, blocker)
	}()
	if _, err := eng.Submit(context.Background(), Query{Kind: QueryEstimate, S: 1, T: 22}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second submit error %v does not wrap ErrOverloaded", err)
	}
}

// TestSubmitStorm hammers Submit from many goroutines under -race: every
// accepted job must terminate, identical queries must produce identical
// results, and the bookkeeping must balance.
func TestSubmitStorm(t *testing.T) {
	g := engineTestGraph(t)
	eng, err := NewEngine(g,
		WithSolverDefaults(Options{K: 2, Z: 150, Seed: 9, R: 6, L: 6}),
		WithMaxConcurrent(4), WithQueueDepth(256), WithResultCache(32))
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Estimate(context.Background(), 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 6
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*perG)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				q := Query{Kind: QueryEstimate, S: 0, T: 17}
				if k%2 == 1 {
					q = Query{Kind: QueryEstimateMany, Pairs: []PairQuery{{S: 0, T: 9}, {S: 1, T: 22}}}
				}
				j, err := eng.Submit(context.Background(), q)
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d submit %d: %w", i, k, err)
					return
				}
				select {
				case <-j.Done():
				case <-time.After(60 * time.Second):
					errCh <- fmt.Errorf("goroutine %d job %s stuck", i, j.ID())
					return
				}
				res, err := j.Result()
				if err != nil {
					errCh <- err
					return
				}
				if q.Kind == QueryEstimate && res.Reliability != want {
					errCh <- fmt.Errorf("storm estimate diverged: %v vs %v", res.Reliability, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.QueuedJobs != 0 || st.RunningJobs != 0 {
		t.Fatalf("queue did not drain: %+v", st)
	}
	if st.CompletedJobs != goroutines*perG {
		t.Fatalf("CompletedJobs = %d, want %d", st.CompletedJobs, goroutines*perG)
	}
	if st.CacheHits == 0 {
		t.Fatalf("identical storm queries produced no cache hits: %+v", st)
	}
}

// TestSubmitDetachedFromSubmitterContext: cancelling the context passed to
// Submit must NOT kill the job — jobs own their lifecycle.
func TestSubmitDetachedFromSubmitterContext(t *testing.T) {
	g := engineTestGraph(t)
	eng, err := NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	job, err := eng.Submit(ctx, Query{Kind: QueryEstimate, S: 0, T: 17})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if st := waitTerminal(t, job); st.State != JobDone {
		t.Fatalf("job inherited the submitter's cancellation: %s (err %v)", st.State, st.Err)
	}
}

// TestJobPanicBecomesFailedJob: a solver panic on the detached job
// goroutine must be contained as a failed job, never crash the process.
// Zeta > 1 reaches ugraph.MustAddEdge with an out-of-range probability,
// which panics.
func TestJobPanicBecomesFailedJob(t *testing.T) {
	g := engineTestGraph(t)
	eng, err := NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	j, err := eng.Submit(context.Background(), Query{
		Kind: QuerySolve, S: 0, T: 39, Method: MethodBE,
		Options: &Options{K: 2, Z: 100, R: 6, L: 6, Zeta: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != JobFailed {
		t.Fatalf("state = %s (err %v), want failed", st.State, st.Err)
	}
	if st.Err == nil || !strings.Contains(st.Err.Error(), "panicked") {
		t.Fatalf("panic not reported in the job error: %v", st.Err)
	}
	// The engine must still serve: slots and counters were released.
	if rel, err := eng.Estimate(context.Background(), 0, 17); err != nil || rel <= 0 {
		t.Fatalf("engine unusable after a panicked job: %v %v", rel, err)
	}
	stats := eng.Stats()
	if stats.QueuedJobs != 0 || stats.RunningJobs != 0 || stats.FailedJobs != 1 {
		t.Fatalf("bookkeeping after panic: %+v", stats)
	}
}

// TestSubmitBadQuery: structural errors are rejected synchronously, not
// deferred to a failed job.
func TestSubmitBadQuery(t *testing.T) {
	g := engineTestGraph(t)
	eng, err := NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(context.Background(), Query{Kind: "nope"}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("unknown kind error %v does not wrap ErrBadQuery", err)
	}
	// Runtime errors surface as failed jobs.
	j, err := eng.Submit(context.Background(), Query{Kind: QueryEstimate, S: -1, T: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != JobFailed || !errors.Is(st.Err, ErrBadQuery) {
		t.Fatalf("out-of-range estimate job: state %s err %v", st.State, st.Err)
	}
}
